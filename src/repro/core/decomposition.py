"""Spatial decomposition into patches (paper §3).

"The variant of spatial decomposition we propose uses cubes whose dimensions
are slightly larger than the cutoff radius.  Thus, atoms in one cube need to
interact only with their neighboring cubes; there are 26 such neighboring
cubes."

The patch grid divides each box axis into ``floor(L / (cutoff * factor))``
patches with ``factor = 15.5/12`` — the sizing that reproduces the paper's
published grids exactly: ApoA-I's 108.86x108.86x77.76 Å box at 12 Å cutoff
gives 7x7x5 = 245 patches, BC1 gives 9x7x6 = 378, bR gives 4x3x3 = 36.

Bonded-term ownership follows §3 verbatim: "a force computation object is
created for each cube and its upstream neighbors ... Bonded forces among
sets of (2, 3, or 4) atoms are calculated by this object if and only if the
base cube coordinates are equal to the minimum of the cube coordinates for
all constituent atoms along each axis" — with the minimum taken
periodic-wrap-aware, since covalent terms span at most adjacent patches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.cells import HALF_SHELL_OFFSETS
from repro.md.system import MolecularSystem

__all__ = [
    "SpatialDecomposition",
    "BondedAssignment",
    "PATCH_SIZE_FACTOR",
    "bin_atoms",
]

#: Patch edge = cutoff * this factor (minimum); 15.5/12 reproduces ApoA-I's
#: published 245-patch grid.
PATCH_SIZE_FACTOR = 15.5 / 12.0

#: The 7 upstream offsets of §3: {0,1}³ minus the zero offset.
UPSTREAM_OFFSETS = np.array(
    [
        (dx, dy, dz)
        for dx in (0, 1)
        for dy in (0, 1)
        for dz in (0, 1)
        if (dx, dy, dz) != (0, 0, 0)
    ],
    dtype=np.int64,
)


def bin_atoms(
    positions: np.ndarray, box: np.ndarray, dims: np.ndarray
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Bucket atoms into a fixed periodic patch grid.

    ``positions`` must already be wrapped into the primary cell (coordinates
    marginally outside — e.g. from floating-point wrap edge cases — are
    clamped onto the boundary patches).  Returns ``(idx3, flat, buckets)``:
    per-atom 3-D patch coordinates, flat patch indices, and one atom-index
    array per patch in stable (input) order.

    This is the shared binning primitive: :class:`SpatialDecomposition` uses
    it at construction, and the real-parallel engine's workers
    (:mod:`repro.md.parallel`) re-bucket atoms into their *fixed* task grid
    with it on every pairlist rebuild, so driver and workers always agree on
    patch membership.
    """
    dims = np.asarray(dims, dtype=np.int64)
    box = np.asarray(box, dtype=np.float64)
    edge = box / dims
    idx3 = np.minimum((positions / edge).astype(np.int64), dims - 1)
    idx3 = np.maximum(idx3, 0)
    flat = (idx3[:, 0] * dims[1] + idx3[:, 1]) * dims[2] + idx3[:, 2]
    n_patches = int(np.prod(dims))
    order = np.argsort(flat, kind="stable")
    counts = np.bincount(flat, minlength=n_patches)
    starts = np.zeros(n_patches + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    buckets = [order[starts[p] : starts[p + 1]] for p in range(n_patches)]
    return idx3, flat, buckets


@dataclass
class BondedAssignment:
    """Per-patch bonded-term ownership, split intra/inter (§4.2.2).

    Each field maps ``patch -> array of term indices`` into the system
    topology.  ``intra`` terms have every atom inside the owner patch (these
    become migratable computes); ``inter`` terms span patches (these stay on
    the owner patch's processor).
    """

    intra: dict[str, dict[int, np.ndarray]] = field(default_factory=dict)
    inter: dict[str, dict[int, np.ndarray]] = field(default_factory=dict)

    KINDS = ("bond", "angle", "dihedral", "improper")

    def counts(self, patch: int, where: str) -> dict[str, int]:
        """Term counts of one patch: ``where`` is "intra" or "inter"."""
        table = getattr(self, where)
        return {k: len(table[k].get(patch, ())) for k in self.KINDS}


class SpatialDecomposition:
    """Atoms bucketed into cutoff-sized periodic patches."""

    def __init__(
        self,
        system: MolecularSystem,
        cutoff: float = 12.0,
        dims: tuple[int, int, int] | None = None,
    ) -> None:
        self.system = system
        self.cutoff = float(cutoff)
        box = system.box
        if dims is None:
            divisor = self.cutoff * PATCH_SIZE_FACTOR
            dims_arr = np.maximum(np.floor(box / divisor).astype(np.int64), 1)
        else:
            dims_arr = np.asarray(dims, dtype=np.int64)
            if dims_arr.shape != (3,) or np.any(dims_arr < 1):
                raise ValueError(f"bad patch dims {dims}")
        # patch edge must cover the cutoff wherever the axis is subdivided,
        # or neighbor-only interaction coverage breaks
        edge = box / dims_arr
        if np.any((dims_arr > 1) & (edge < self.cutoff)):
            raise ValueError(
                f"patch edges {edge} smaller than cutoff {self.cutoff}; "
                "reduce dims or cutoff"
            )
        self.dims = dims_arr
        self.patch_edge = edge

        idx3, flat, buckets = bin_atoms(system.positions, box, dims_arr)
        self.patch_coords_of_atom = idx3
        self.patch_of_atom = flat
        self.patch_atoms: list[np.ndarray] = buckets
        self._neighbor_pairs: list[tuple[int, int]] | None = None

    # ------------------------------------------------------------------ #
    @property
    def n_patches(self) -> int:
        """Total patch count (product of grid dims)."""
        return int(np.prod(self.dims))

    def coords(self, patch: int) -> tuple[int, int, int]:
        """Grid coordinates ``(ix, iy, iz)`` of a flat patch index."""
        dy, dz = int(self.dims[1]), int(self.dims[2])
        ix, rem = divmod(int(patch), dy * dz)
        iy, iz = divmod(rem, dz)
        return ix, iy, iz

    def flat(self, ix: int, iy: int, iz: int) -> int:
        """Flat patch index of (periodic) grid coordinates."""
        d = self.dims
        return int(((ix % d[0]) * d[1] + (iy % d[1])) * d[2] + (iz % d[2]))

    def patch_size(self, patch: int) -> int:
        """Atom count of one patch."""
        return len(self.patch_atoms[patch])

    def self_patches(self) -> range:
        """Iterable of all patch indices (self-compute targets)."""
        return range(self.n_patches)

    def neighbor_pairs(self) -> list[tuple[int, int]]:
        """Every neighboring patch pair exactly once (13 per patch, PBC).

        These are the pairs that receive non-bonded pair compute objects:
        "for each pair of neighboring cubes, we assign a non-bonded force
        computation object" — 26/2 = 13 pair objects plus 1 self object per
        patch, the paper's 14x count (3430 objects for ApoA-I's 245 cubes).
        """
        if self._neighbor_pairs is None:
            pairs: set[tuple[int, int]] = set()
            for p in range(self.n_patches):
                ix, iy, iz = self.coords(p)
                for dx, dy, dz in HALF_SHELL_OFFSETS:
                    q = self.flat(ix + int(dx), iy + int(dy), iz + int(dz))
                    if q != p:
                        pairs.add((min(p, q), max(p, q)))
            self._neighbor_pairs = sorted(pairs)
        return self._neighbor_pairs

    def upstream_neighbors(self, patch: int) -> list[int]:
        """The <= 7 distinct neighbors at equal-or-greater coordinates (§3)."""
        ix, iy, iz = self.coords(patch)
        out: list[int] = []
        seen = {patch}
        for dx, dy, dz in UPSTREAM_OFFSETS:
            q = self.flat(ix + int(dx), iy + int(dy), iz + int(dz))
            if q not in seen:
                seen.add(q)
                out.append(q)
        return out

    # ------------------------------------------------------------------ #
    def _owner_coord(self, coords: np.ndarray, axis_dim: int) -> int:
        """Wrap-aware minimum of patch coordinates along one axis.

        Covalent terms span at most adjacent patches, so the coordinate set
        is either {c} or {c, (c+1) % dim}; the owner coordinate is c.
        """
        vals = np.unique(coords)
        if len(vals) == 1:
            return int(vals[0])
        if len(vals) == 2:
            a, b = int(vals[0]), int(vals[1])
            if (a + 1) % axis_dim == b:
                return a
            if (b + 1) % axis_dim == a:
                return b
        # a term spanning non-adjacent patches indicates a stretched bond
        # (bad geometry); fall back to the plain minimum so ownership stays
        # unique and total
        return int(vals[0])

    def owner_patch(self, atom_indices: np.ndarray) -> int:
        """The patch owning a bonded term over ``atom_indices`` (§3 rule)."""
        coords = self.patch_coords_of_atom[atom_indices]
        return self.flat(
            self._owner_coord(coords[:, 0], int(self.dims[0])),
            self._owner_coord(coords[:, 1], int(self.dims[1])),
            self._owner_coord(coords[:, 2], int(self.dims[2])),
        )

    def assign_bonded_terms(self) -> BondedAssignment:
        """Partition every bonded term to its owner patch, intra/inter split.

        A term is *intra* when all constituent atoms live in the owner patch
        (the common case: "Although some bonds cross the boundaries between
        cubes, most are contained completely within a single cube", §4.2.2).
        """
        topo = self.system.topology
        result = BondedAssignment()
        term_tables = {
            "bond": topo.bond_arrays()[0],
            "angle": topo.angle_arrays()[0],
            "dihedral": topo.dihedral_arrays()[0],
            "improper": topo.improper_arrays()[0],
        }
        for kind, idx in term_tables.items():
            intra: dict[int, list[int]] = {}
            inter: dict[int, list[int]] = {}
            for t in range(len(idx)):
                atoms = idx[t]
                owner = self.owner_patch(atoms)
                same = np.all(self.patch_of_atom[atoms] == self.patch_of_atom[atoms[0]])
                bucket = intra if same else inter
                bucket.setdefault(owner, []).append(t)
            result.intra[kind] = {
                p: np.array(v, dtype=np.int64) for p, v in intra.items()
            }
            result.inter[kind] = {
                p: np.array(v, dtype=np.int64) for p, v in inter.items()
            }
        return result

    # ------------------------------------------------------------------ #
    def pair_row_counts(self, patch_a: int, patch_b: int | None) -> np.ndarray:
        """In-cutoff partner counts per atom of ``patch_a``.

        For a pair compute (``patch_b`` given) entry ``r`` counts atoms of
        ``patch_b`` within the cutoff of atom ``r`` of ``patch_a``.  For a
        self compute (``patch_b is None``) it counts only partners with a
        larger within-patch index, so the total is each pair once.  These row
        counts drive both the cost model and grainsize splitting.
        """
        from repro.util.pbc import minimum_image

        pos = self.system.positions
        box = self.system.box
        a = pos[self.patch_atoms[patch_a]]
        if patch_b is None:
            if len(a) < 2:
                return np.zeros(len(a), dtype=np.int64)
            delta = minimum_image(a[np.newaxis, :, :] - a[:, np.newaxis, :], box)
            r2 = np.einsum("ijk,ijk->ij", delta, delta)
            within = r2 < self.cutoff * self.cutoff
            within &= np.triu(np.ones_like(within, dtype=bool), k=1)
            return within.sum(axis=1).astype(np.int64)
        b = pos[self.patch_atoms[patch_b]]
        if len(a) == 0 or len(b) == 0:
            return np.zeros(len(a), dtype=np.int64)
        delta = minimum_image(b[np.newaxis, :, :] - a[:, np.newaxis, :], box)
        r2 = np.einsum("ijk,ijk->ij", delta, delta)
        return (r2 < self.cutoff * self.cutoff).sum(axis=1).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover
        d = self.dims
        return (
            f"SpatialDecomposition({d[0]}x{d[1]}x{d[2]} = {self.n_patches} patches, "
            f"cutoff={self.cutoff}, edges={np.round(self.patch_edge, 2).tolist()})"
        )
