"""The paper's primary contribution: hybrid force/spatial decomposition
molecular dynamics with measurement-based load balancing.

Layer map (bottom of DESIGN.md §3):

* :mod:`repro.core.decomposition` — cutoff-sized patches, neighbor/upstream
  relations, bonded-term ownership (§3),
* :mod:`repro.core.computes` — compute-object descriptors with exact
  cost-model loads, grainsize splitting (§4.2.1) and the bonded
  intra/inter split (§4.2.2),
* :mod:`repro.core.chares` — the message-driven patch / proxy / compute
  objects (§3.1),
* :mod:`repro.core.simulation` — the driver: placement, timestep protocol,
  the three-stage load-balancing cycle (§3.2), and step timing.
"""

from repro.core.decomposition import SpatialDecomposition, BondedAssignment
from repro.core.computes import (
    ComputeDescriptor,
    GrainsizeConfig,
    build_nonbonded_computes,
    build_bonded_computes,
)
from repro.core.simulation import ParallelSimulation, SimulationConfig, StepTimings

__all__ = [
    "SpatialDecomposition",
    "BondedAssignment",
    "ComputeDescriptor",
    "GrainsizeConfig",
    "build_nonbonded_computes",
    "build_bonded_computes",
    "ParallelSimulation",
    "SimulationConfig",
    "StepTimings",
]
