"""Compute-object descriptors and grainsize control (paper §3.1, §4.2.1–2).

A *descriptor* is the placement-independent identity of one compute object:
what it computes, which patches it needs, its modeled load, and whether the
balancer may move it.  The simulation driver turns descriptors into chares
each placement phase; the balancer reasons about descriptors only.

Grainsize control reproduces §4.2.1: self computes are split by atom count
(the "initial" improvement) and face/edge/corner pair computes are split when
their modeled load exceeds the target grainsize (the Figure 1 → Figure 2
optimization, eliminating the bimodal tail that capped scaling at
``T_sequential / T_largest_object``).

The bonded split reproduces §4.2.2: per patch and term kind we create one
*intra* object (every atom in the patch; migratable, communicates exactly
like a non-bonded self compute) and one *inter* object (terms spanning
patches; non-migratable, pinned to the owner patch's processor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.decomposition import BondedAssignment, SpatialDecomposition
from repro.core.grainsize import GrainsizeConfig, split_counts
from repro.costmodel.model import CostModel

__all__ = [
    "ComputeDescriptor",
    "GrainsizeConfig",
    "build_nonbonded_computes",
    "build_bonded_computes",
]


@dataclass
class ComputeDescriptor:
    """Identity + modeled load of one compute object.

    ``kind`` is one of ``"nb_self"``, ``"nb_pair"``, ``"bonded_intra"``,
    ``"bonded_inter"``.  ``part``/``n_parts`` identify a grainsize slice
    (atoms of the first patch striped ``part::n_parts``).  ``load`` is the
    cost-model execution time in reference seconds; the load balancer will
    *measure* actual times at runtime, but descriptors carry the model value
    for placement before any measurement exists.
    """

    kind: str
    patches: tuple[int, ...]
    part: int = 0
    n_parts: int = 1
    load: float = 0.0
    n_pairs: int = 0
    n_candidates: int = 0
    migratable: bool = True
    #: term indices for bonded computes: {kind: np.ndarray}
    term_indices: dict[str, np.ndarray] = field(default_factory=dict)
    #: stable index assigned by the builder (used to match LB measurements
    #: across placement phases)
    index: int = -1

    @property
    def home_patch(self) -> int:
        """The patch this compute is anchored to for initial placement."""
        return self.patches[0]

    def label(self) -> str:
        p = "+".join(str(x) for x in self.patches)
        part = f"[{self.part}/{self.n_parts}]" if self.n_parts > 1 else ""
        return f"{self.kind}({p}){part}"


#: retained alias — the split arithmetic lives in :mod:`repro.core.grainsize`
#: so the real engine (:mod:`repro.md.parallel`) shares it
_split_counts = split_counts


def build_nonbonded_computes(
    decomposition: SpatialDecomposition,
    cost_model: CostModel,
    grainsize: GrainsizeConfig | None = None,
) -> list[ComputeDescriptor]:
    """All non-bonded compute descriptors with exact loads.

    Loads come from exact in-cutoff pair counts on the current coordinates
    (what the paper's Projections measurements would report), through the
    calibrated cost model.
    """
    grainsize = grainsize or GrainsizeConfig()
    descriptors: list[ComputeDescriptor] = []

    for p in decomposition.self_patches():
        rows = decomposition.pair_row_counts(p, None)
        n_atoms = len(rows)
        total_pairs = int(rows.sum())
        total_cand = n_atoms * (n_atoms - 1) // 2
        total_load = cost_model.nonbonded_cost(total_pairs, total_cand)
        n_parts = grainsize.parts_for(total_load, grainsize.split_self)
        for part, (pairs, nrows) in enumerate(_split_counts(rows, n_parts)):
            cand = nrows * max(n_atoms - 1, 0) // 2 if n_parts > 1 else total_cand
            descriptors.append(
                ComputeDescriptor(
                    kind="nb_self",
                    patches=(p,),
                    part=part,
                    n_parts=n_parts,
                    load=cost_model.nonbonded_cost(pairs, cand),
                    n_pairs=pairs,
                    n_candidates=cand,
                    migratable=True,
                )
            )

    for pa, pb in decomposition.neighbor_pairs():
        rows = decomposition.pair_row_counts(pa, pb)
        nb = decomposition.patch_size(pb)
        total_pairs = int(rows.sum())
        total_cand = len(rows) * nb
        total_load = cost_model.nonbonded_cost(total_pairs, total_cand)
        n_parts = grainsize.parts_for(total_load, grainsize.split_pairs)
        for part, (pairs, nrows) in enumerate(_split_counts(rows, n_parts)):
            descriptors.append(
                ComputeDescriptor(
                    kind="nb_pair",
                    patches=(pa, pb),
                    part=part,
                    n_parts=n_parts,
                    load=cost_model.nonbonded_cost(pairs, nrows * nb),
                    n_pairs=pairs,
                    n_candidates=nrows * nb,
                    migratable=True,
                )
            )

    for i, d in enumerate(descriptors):
        d.index = i
    return descriptors


def build_bonded_computes(
    decomposition: SpatialDecomposition,
    assignment: BondedAssignment,
    cost_model: CostModel,
    split_intra_inter: bool = True,
    index_offset: int = 0,
    grainsize: GrainsizeConfig | None = None,
) -> list[ComputeDescriptor]:
    """Bonded compute descriptors per patch (§4.2.2).

    The paper creates separate objects per bond *type* and per cube ("we
    created two bond objects for each bond type associated with a cube"); we
    do the same — one migratable intra object per (patch, term kind), further
    grainsize-split when a dense patch's terms exceed the target load, plus
    one non-migratable inter object per patch holding all boundary-crossing
    terms.

    With ``split_intra_inter=False`` the pre-§4.2.2 design is emulated: a
    single non-migratable bonded object per patch holding *all* of its terms
    (the ablation benchmark measures what this costs at scale).
    """
    grainsize = grainsize or GrainsizeConfig()
    descriptors: list[ComputeDescriptor] = []
    kinds = BondedAssignment.KINDS

    def kind_cost(kind: str, count: int) -> float:
        return cost_model.bonded_cost(
            count if kind == "bond" else 0,
            count if kind == "angle" else 0,
            count if kind == "dihedral" else 0,
            count if kind == "improper" else 0,
        )

    for p in decomposition.self_patches():
        intra_terms = {
            k: assignment.intra[k].get(p, np.zeros(0, dtype=np.int64)) for k in kinds
        }
        inter_terms = {
            k: assignment.inter[k].get(p, np.zeros(0, dtype=np.int64)) for k in kinds
        }
        intra_counts = {k: len(v) for k, v in intra_terms.items()}
        inter_counts = {k: len(v) for k, v in inter_terms.items()}

        if split_intra_inter:
            for kind in kinds:
                idx = intra_terms[kind]
                if len(idx) == 0:
                    continue
                total_load = kind_cost(kind, len(idx))
                n_parts = grainsize.parts_for(total_load, grainsize.split_self)
                for part in range(n_parts):
                    subset = idx[part::n_parts]
                    if len(subset) == 0:
                        continue
                    descriptors.append(
                        ComputeDescriptor(
                            kind="bonded_intra",
                            patches=(p,),
                            part=part,
                            n_parts=n_parts,
                            load=kind_cost(kind, len(subset)),
                            migratable=True,
                            term_indices={kind: subset},
                        )
                    )
            if sum(inter_counts.values()):
                upstream = tuple(
                    sorted({p, *_patches_of_terms(decomposition, inter_terms)})
                )
                descriptors.append(
                    ComputeDescriptor(
                        kind="bonded_inter",
                        patches=(p,) + tuple(q for q in upstream if q != p),
                        load=cost_model.bonded_cost(
                            inter_counts["bond"],
                            inter_counts["angle"],
                            inter_counts["dihedral"],
                            inter_counts["improper"],
                        ),
                        migratable=False,
                        term_indices=inter_terms,
                    )
                )
        else:
            merged = {
                k: np.concatenate([intra_terms[k], inter_terms[k]]) for k in kinds
            }
            if sum(len(v) for v in merged.values()) == 0:
                continue
            upstream = tuple(sorted({p, *_patches_of_terms(decomposition, merged)}))
            descriptors.append(
                ComputeDescriptor(
                    kind="bonded_inter",
                    patches=(p,) + tuple(q for q in upstream if q != p),
                    load=cost_model.bonded_cost(
                        intra_counts["bond"] + inter_counts["bond"],
                        intra_counts["angle"] + inter_counts["angle"],
                        intra_counts["dihedral"] + inter_counts["dihedral"],
                        intra_counts["improper"] + inter_counts["improper"],
                    ),
                    migratable=False,
                    term_indices=merged,
                )
            )

    for i, d in enumerate(descriptors):
        d.index = index_offset + i
    return descriptors


def _patches_of_terms(
    decomposition: SpatialDecomposition, terms: dict[str, np.ndarray]
) -> set[int]:
    """All patches touched by the atoms of the given terms."""
    topo = decomposition.system.topology
    tables = {
        "bond": topo.bond_arrays()[0],
        "angle": topo.angle_arrays()[0],
        "dihedral": topo.dihedral_arrays()[0],
        "improper": topo.improper_arrays()[0],
    }
    patches: set[int] = set()
    for kind, idx in terms.items():
        if len(idx) == 0:
            continue
        atoms = tables[kind][idx].ravel()
        patches.update(int(p) for p in np.unique(decomposition.patch_of_atom[atoms]))
    return patches
