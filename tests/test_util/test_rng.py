"""Deterministic RNG construction."""

import numpy as np

from repro.util.rng import make_rng


def test_same_seed_same_stream():
    a = make_rng(42).random(5)
    b = make_rng(42).random(5)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))


def test_generator_passthrough():
    g = np.random.default_rng(7)
    assert make_rng(g) is g


def test_none_gives_entropy_generator():
    assert isinstance(make_rng(None), np.random.Generator)
