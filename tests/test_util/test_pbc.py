"""Periodic boundary helpers: minimum image, wrapping, volumes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.pbc import box_volume, displacement_table, minimum_image, wrap_positions

BOX = np.array([10.0, 20.0, 30.0])


class TestMinimumImage:
    def test_identity_inside_half_box(self):
        delta = np.array([[1.0, -2.0, 3.0]])
        out = minimum_image(delta, BOX)
        np.testing.assert_allclose(out, delta)

    def test_folds_large_displacement(self):
        delta = np.array([[9.0, 0.0, 0.0]])
        out = minimum_image(delta, BOX)
        np.testing.assert_allclose(out, [[-1.0, 0.0, 0.0]])

    def test_folds_negative(self):
        delta = np.array([[-9.0, -19.0, -29.0]])
        out = minimum_image(delta, BOX)
        np.testing.assert_allclose(out, [[1.0, 1.0, 1.0]])

    def test_multiple_periods(self):
        delta = np.array([[25.0, 45.0, 95.0]])
        out = minimum_image(delta, BOX)
        assert np.all(np.abs(out) <= BOX / 2 + 1e-12)

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_result_always_within_half_box(self, deltas):
        arr = np.array(deltas, dtype=float)
        out = minimum_image(arr, BOX)
        assert np.all(np.abs(out) <= BOX / 2 * (1 + 1e-12))

    @given(
        st.tuples(
            st.floats(-4.9, 4.9),
            st.floats(-9.9, 9.9),
            st.floats(-14.9, 14.9),
        ),
        st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3)),
    )
    @settings(max_examples=50, deadline=None)
    def test_periodic_invariance(self, delta, shifts):
        """Adding whole box periods never changes the minimum image."""
        d = np.array(delta, dtype=float)
        shifted = d + np.array(shifts, dtype=float) * BOX
        np.testing.assert_allclose(
            minimum_image(d, BOX), minimum_image(shifted, BOX), atol=1e-9
        )


class TestWrapPositions:
    def test_wraps_into_primary_cell(self):
        pos = np.array([[10.5, -0.5, 31.0], [-20.0, 40.0, 0.0]])
        out = wrap_positions(pos, BOX)
        assert np.all(out >= 0.0)
        assert np.all(out < BOX)

    def test_preserves_interior_points(self):
        pos = np.array([[5.0, 5.0, 5.0]])
        np.testing.assert_allclose(wrap_positions(pos, BOX), pos)

    def test_edge_case_exactly_box_length(self):
        pos = np.array([[10.0, 20.0, 30.0]])
        out = wrap_positions(pos, BOX)
        np.testing.assert_allclose(out, [[0.0, 0.0, 0.0]])

    def test_tiny_negative_rounds_into_cell(self):
        pos = np.array([[-1e-16, 0.0, 0.0]])
        out = wrap_positions(pos, BOX)
        assert np.all(out < BOX)
        assert np.all(out >= 0.0)


class TestBoxVolume:
    def test_volume(self):
        assert box_volume(BOX) == pytest.approx(6000.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            box_volume(np.array([1.0, 2.0]))


class TestDisplacementTable:
    def test_shape_and_antisymmetry(self):
        rng = np.random.default_rng(0)
        a = rng.random((4, 3)) * BOX
        b = rng.random((6, 3)) * BOX
        tab = displacement_table(a, b, BOX)
        assert tab.shape == (4, 6, 3)
        tab_T = displacement_table(b, a, BOX)
        np.testing.assert_allclose(tab, -np.transpose(tab_T, (1, 0, 2)), atol=1e-12)

    def test_no_box_means_raw_differences(self):
        a = np.zeros((1, 3))
        b = np.array([[9.0, 0.0, 0.0]])
        tab = displacement_table(a, b, None)
        np.testing.assert_allclose(tab[0, 0], [9.0, 0.0, 0.0])
