"""Worker-count autodetection must respect the scheduling affinity mask."""

import os

import pytest

from repro.util import available_cpu_count
from repro.util.cpus import available_cpu_count as direct


def test_exported_from_package():
    assert available_cpu_count is direct


def test_returns_positive_int():
    n = available_cpu_count()
    assert isinstance(n, int) and n >= 1


def test_prefers_affinity_mask_over_cpu_count(monkeypatch):
    # an 8-core machine whose process is pinned to 2 CPUs: the pool must
    # size itself from the mask, not the machine
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 5}, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    assert available_cpu_count() == 2


def test_falls_back_when_affinity_unsupported(monkeypatch):
    # macOS/Windows: no sched_getaffinity at all
    def boom(pid):
        raise AttributeError("sched_getaffinity")

    monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 6)
    assert available_cpu_count() == 6


def test_falls_back_on_oserror(monkeypatch):
    def boom(pid):
        raise OSError("not supported")

    monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 3)
    assert available_cpu_count() == 3


def test_never_returns_zero(monkeypatch):
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(), raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert available_cpu_count() == 1


def test_parallel_pool_sizes_from_affinity(monkeypatch):
    # the real engine's "one worker per CPU" must go through the helper:
    # pinned to one CPU, n_workers=0 must mean the sequential fallback,
    # never an oversubscribed pool
    import repro.md.parallel as par
    from repro.builder import small_water_box
    from repro.md.nonbonded import NonbondedOptions

    monkeypatch.setattr(par, "available_cpu_count", lambda: 1)
    system = small_water_box(8, seed=1, relax=False)
    nb = par.ParallelNonbonded(system, NonbondedOptions(cutoff=6.0), n_workers=0)
    try:
        assert nb.n_workers == 1
        assert not nb.active
    finally:
        nb.close()
