"""The optimized multicast (§4.2.3): pack once vs pack per destination."""

import pytest

from repro.runtime.chare import Chare
from repro.runtime.machine import MachineModel
from repro.runtime.message import MulticastPayload
from repro.runtime.scheduler import Scheduler

MACHINE = MachineModel(
    name="pack-heavy",
    cpu_factor=1.0,
    send_overhead_s=0.01,
    recv_overhead_s=0.0,
    pack_per_byte_s=0.001,  # 1 ms per byte: packing dominates
    latency_s=0.0,
    bandwidth_Bps=1e30,
    local_send_overhead_s=0.0,
)


class Sink(Chare):
    def __init__(self):
        super().__init__()
        self.arrivals = []

    def recv(self):
        self.arrivals.append(self.runtime.now)
        return 0.0


class Caster(Chare):
    def go(self, dests=(), size=100.0):
        self.multicast(list(dests), "recv", {}, size_bytes=size)
        return 0.0


def run_multicast(
    optimized: bool, n_dest: int = 10, size: float = 100.0, n_casts: int = 1
):
    sched = Scheduler(n_dest + 1, MACHINE, optimized_multicast=optimized)
    caster = Caster()
    oc = sched.register(caster, 0)
    sinks = []
    for i in range(n_dest):
        s = Sink()
        sched.register(s, i + 1)
        sinks.append(s)
    dests = [s.object_id for s in sinks]
    for _ in range(n_casts):
        sched.inject(oc, "go", {"dests": dests, "size": size})
    sched.run()
    sender_busy = sched.trace.summary().busy_time_per_proc[0]
    return sender_busy, sinks, sched


class TestMulticast:
    def test_optimized_packs_once(self):
        busy, _, _ = run_multicast(optimized=True)
        # 1 pack (100 B * 1 ms) + 10 send overheads
        assert busy == pytest.approx(0.1 + 10 * 0.01)

    def test_naive_packs_per_destination(self):
        busy, _, _ = run_multicast(optimized=False)
        assert busy == pytest.approx(10 * (0.1 + 0.01))

    def test_optimization_halves_or_better(self):
        """The paper reports the critical method shortening by half."""
        naive, _, _ = run_multicast(optimized=False)
        opt, _, _ = run_multicast(optimized=True)
        assert opt < naive / 2

    def test_all_destinations_receive(self):
        _, sinks, _ = run_multicast(optimized=True, n_dest=7)
        assert all(len(s.arrivals) == 1 for s in sinks)

    def test_local_destinations_cheap_both_modes(self):
        sched = Scheduler(1, MACHINE, optimized_multicast=False)
        caster = Caster()
        oc = sched.register(caster, 0)
        sinks = [Sink() for _ in range(5)]
        dests = [sched.register(s, 0) for s in sinks]
        sched.inject(oc, "go", {"dests": dests})
        sched.run()
        # local sends only pay local_send_overhead (0 here): just delivery
        assert all(len(s.arrivals) == 1 for s in sinks)


class TestMulticastStats:
    """Pack accounting: the §4.2.3 claim, asserted on runtime counters."""

    def test_optimized_packs_exactly_once_per_multicast(self):
        _, _, sched = run_multicast(optimized=True, n_dest=10, n_casts=4)
        st = sched.multicast_stats
        assert st.multicasts == 4
        assert st.packs == st.multicasts  # pack once per multicast
        assert st.envelopes == 4 * 10

    def test_naive_packs_once_per_remote_destination(self):
        _, _, sched = run_multicast(optimized=False, n_dest=10, n_casts=3)
        st = sched.multicast_stats
        assert st.multicasts == 3
        assert st.packs == 3 * 10
        assert st.envelopes == 3 * 10

    def test_all_local_multicast_never_packs(self):
        sched = Scheduler(1, MACHINE, optimized_multicast=True)
        caster = Caster()
        oc = sched.register(caster, 0)
        dests = [sched.register(Sink(), 0) for _ in range(5)]
        sched.inject(oc, "go", {"dests": dests})
        sched.run()
        st = sched.multicast_stats
        assert (st.multicasts, st.packs, st.envelopes) == (1, 0, 5)

    def test_envelopes_share_one_payload(self):
        payload = MulticastPayload(method="recv", data={"coords": [1, 2, 3]})
        e1, e2 = payload.envelope(7), payload.envelope(8)
        assert e1.data is payload.data
        assert e2.data is payload.data
        assert (e1.dest_object, e2.dest_object) == (7, 8)

    def test_stats_reset(self):
        _, _, sched = run_multicast(optimized=True)
        sched.multicast_stats.reset()
        st = sched.multicast_stats
        assert (st.multicasts, st.packs, st.envelopes) == (0, 0, 0)
