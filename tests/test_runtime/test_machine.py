"""Machine models."""

import pytest

from repro.runtime.machine import ASCI_RED, MACHINES, ORIGIN_2000, T3E_900, MachineModel


class TestMachineModel:
    def test_presets_registered(self):
        assert "ASCI-Red" in MACHINES
        assert "T3E-900" in MACHINES
        assert "Origin-2000" in MACHINES

    def test_reference_machine_is_unit_factor(self):
        assert ASCI_RED.cpu_factor == 1.0

    def test_faster_cpus_per_paper_tables(self):
        """Table 5/6: T3E and Origin per-CPU times beat ASCI-Red."""
        assert T3E_900.cpu_factor < 1.0
        assert ORIGIN_2000.cpu_factor < T3E_900.cpu_factor

    def test_transit_time_components(self):
        m = ASCI_RED
        assert m.transit_time(0) == pytest.approx(m.latency_s)
        assert m.transit_time(1e6) == pytest.approx(m.latency_s + 1e6 / m.bandwidth_Bps)

    def test_pack_time_linear(self):
        assert ASCI_RED.pack_time(2000) == pytest.approx(2 * ASCI_RED.pack_time(1000))

    def test_with_overrides(self):
        m2 = ASCI_RED.with_overrides(latency_s=1e-3)
        assert m2.latency_s == 1e-3
        assert m2.bandwidth_Bps == ASCI_RED.bandwidth_Bps
        assert ASCI_RED.latency_s != 1e-3  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel("bad", 0.0, 1e-6, 1e-6, 1e-9, 1e-6, 1e8)
        with pytest.raises(ValueError):
            MachineModel("bad", 1.0, -1e-6, 1e-6, 1e-9, 1e-6, 1e8)
        with pytest.raises(ValueError):
            MachineModel("bad", 1.0, 1e-6, 1e-6, 1e-9, 1e-6, 0.0)
