"""In-memory double checkpointing: snapshots, buddy placement, fallback."""

import numpy as np
import pytest

from repro.core.chares import (
    BondedComputeChare,
    HomePatchChare,
    NonbondedComputeChare,
    ProxyPatchChare,
)
from repro.runtime.checkpoint import (
    SKIP_ATTRS,
    BackendState,
    ChareCheckpoint,
    Checkpoint,
    DoubleCheckpointStore,
    RecoveryEvent,
    RecoveryStats,
    UnrecoverableFailure,
    restore_chare,
    snapshot_chare,
    state_bytes,
)


def _mutate_and_roundtrip(make_chare):
    """Snapshot, scramble the original, restore into a fresh instance."""
    original = make_chare()
    state = snapshot_chare(original)
    fresh = make_chare()
    # scramble the fresh copy's logical state so restore must do real work
    for k in state:
        if isinstance(getattr(fresh, k, None), int):
            setattr(fresh, k, 10_000)
    restore_chare(fresh, state)
    return original, fresh, state


def _assert_states_equal(a, b):
    sa, sb = snapshot_chare(a), snapshot_chare(b)
    assert sa.keys() == sb.keys()
    for k in sa:
        va, vb = sa[k], sb[k]
        if isinstance(va, np.ndarray):
            np.testing.assert_array_equal(va, vb)
        elif isinstance(va, dict) and any(
            isinstance(x, np.ndarray) for x in va.values()
        ):
            assert va.keys() == vb.keys()
            for key in va:
                np.testing.assert_array_equal(va[key], vb[key])
        else:
            assert va == vb, k


class TestSnapshotRoundTrip:
    """Every chare subclass in core/chares.py round-trips through PUP."""

    def test_home_patch(self):
        def make():
            c = HomePatchChare(
                patch=3,
                atoms=np.arange(7, dtype=np.int64),
                integration_cost=1e-4,
                n_rounds=10,
            )
            c.round = 4
            c._received = 2
            return c

        original, fresh, _ = _mutate_and_roundtrip(make)
        assert fresh.round == 4
        assert fresh._received == 2
        _assert_states_equal(original, fresh)

    def test_proxy_patch(self):
        def make():
            c = ProxyPatchChare(patch=2, home_id=9, n_atoms=12)
            c._deposits = 1
            return c

        original, fresh, _ = _mutate_and_roundtrip(make)
        assert fresh._deposits == 1
        _assert_states_equal(original, fresh)

    def test_nonbonded_compute(self):
        def make():
            c = NonbondedComputeChare(
                patches=(1, 2),
                load=3e-3,
                part=1,
                n_parts=4,
                atoms_a=np.arange(5, dtype=np.int64),
                atoms_b=np.arange(3, dtype=np.int64),
            )
            c.round = 6
            c._ready = 1
            return c

        original, fresh, _ = _mutate_and_roundtrip(make)
        assert fresh.round == 6
        assert fresh._ready == 1
        _assert_states_equal(original, fresh)

    def test_bonded_compute(self):
        def make():
            c = BondedComputeChare(
                patches=(0,),
                load=1e-3,
                migratable=True,
                term_indices={"bonds": np.array([0, 4, 5])},
            )
            c.round = 2
            return c

        original, fresh, _ = _mutate_and_roundtrip(make)
        assert fresh.round == 2
        assert fresh.migratable is True
        _assert_states_equal(original, fresh)

    def test_snapshot_excludes_runtime_wiring(self):
        c = HomePatchChare(0, np.arange(3), 1e-4, 5)
        c.proxy_ids = [1, 2]
        c.expected_contributions = 7
        state = snapshot_chare(c)
        assert not (set(state) & SKIP_ATTRS)

    def test_snapshot_is_deep(self):
        c = NonbondedComputeChare((0, 1), 1e-3, atoms_a=np.zeros(4))
        state = snapshot_chare(c)
        c.atoms_a[:] = 99.0
        assert state["atoms_a"].max() == 0.0


class TestStateBytes:
    def test_arrays_dominate(self):
        small = state_bytes({"x": 1})
        big = state_bytes({"x": 1, "a": np.zeros(1000)})
        assert big == small + 8000.0

    def test_containers_counted(self):
        assert state_bytes({"l": [1, 2, 3]}) == 128.0 + 24.0
        assert state_bytes({"d": {"a": 1}}) == 128.0 + 16.0


class TestBuddy:
    def test_next_live_cyclic(self):
        live = [0, 1, 2, 3]
        assert DoubleCheckpointStore.buddy_of(0, live) == 1
        assert DoubleCheckpointStore.buddy_of(3, live) == 0

    def test_skips_dead(self):
        live = [0, 2, 3]
        assert DoubleCheckpointStore.buddy_of(0, live) == 2

    def test_dead_owner_maps_to_first_live(self):
        assert DoubleCheckpointStore.buddy_of(1, [0, 2]) == 0

    def test_single_live_degenerate(self):
        assert DoubleCheckpointStore.buddy_of(0, [0]) == 0


def _checkpoint(round_, owners_buddies):
    chares = {
        ("c", i): ChareCheckpoint(("c", i), {"round": round_}, o, b)
        for i, (o, b) in enumerate(owners_buddies)
    }
    return Checkpoint(round=round_, time=float(round_), chares=chares)


class TestStore:
    def test_survives(self):
        cp = _checkpoint(1, [(0, 1), (1, 2)])
        assert cp.survives({0})
        assert cp.survives({2})
        assert not cp.survives({1, 2})

    def test_latest_preferred(self):
        store = DoubleCheckpointStore(3)
        store.commit(_checkpoint(1, [(0, 1)]))
        store.commit(_checkpoint(2, [(0, 1)]))
        assert store.recovery_checkpoint({2}).round == 2

    def test_falls_back_to_previous(self):
        store = DoubleCheckpointStore(3)
        store.commit(_checkpoint(1, [(0, 1), (2, 0)]))
        store.commit(_checkpoint(2, [(1, 2), (2, 1)]))  # all copies touch 1,2
        assert store.recovery_checkpoint({1, 2}).round == 1

    def test_unrecoverable_raises(self):
        store = DoubleCheckpointStore(3)
        store.commit(_checkpoint(1, [(0, 1)]))
        with pytest.raises(UnrecoverableFailure):
            store.recovery_checkpoint({0, 1})

    def test_empty_store_unrecoverable(self):
        with pytest.raises(UnrecoverableFailure):
            DoubleCheckpointStore(2).recovery_checkpoint({0})

    def test_bytes_sent_from_counts_remote_buddies_only(self):
        cp = Checkpoint(
            round=0,
            time=0.0,
            chares={
                ("a",): ChareCheckpoint(("a",), {}, owner=0, buddy=1),
                ("b",): ChareCheckpoint(("b",), {}, owner=0, buddy=0),
                ("c",): ChareCheckpoint(("c",), {}, owner=1, buddy=0),
            },
        )
        assert cp.bytes_sent_from(0) == 128.0  # only ("a",)
        assert cp.bytes_sent_from(1) == 128.0  # only ("c",)


class _FakeBackend:
    def __init__(self, n):
        self.positions = np.random.default_rng(0).random((n, 3))
        self.velocities = np.zeros((n, 3))
        self.forces = np.ones((n, 3))
        self.energy_by_step = {0: {"kinetic": 1.0}}


class TestBackendState:
    def test_capture_restore_roundtrip(self):
        backend = _FakeBackend(8)
        snap = BackendState.capture(backend)
        pos0 = backend.positions.copy()
        backend.positions += 5.0
        backend.energy_by_step[1] = {"kinetic": 2.0}
        snap.restore(backend)
        np.testing.assert_array_equal(backend.positions, pos0)
        assert backend.energy_by_step == {0: {"kinetic": 1.0}}

    def test_capture_is_independent_copy(self):
        backend = _FakeBackend(4)
        snap = BackendState.capture(backend)
        backend.forces[:] = -1.0
        assert snap.forces.min() == 1.0


class TestRecoveryAccounting:
    def test_event_derived_quantities(self):
        e = RecoveryEvent(
            procs=(2,),
            failure_time=1.0,
            detected_time=1.1,
            checkpoint_round=4,
            rounds_done_at_failure=7,
            restore_cost_s=0.05,
            restart_time=1.2,
        )
        assert e.steps_replayed == 3
        assert e.detection_latency_s == pytest.approx(0.1)
        assert e.recovery_time_s == pytest.approx(0.2)

    def test_replay_never_negative(self):
        e = RecoveryEvent((0,), 0.0, 0.0, 5, 2, 0.0, 0.0)
        assert e.steps_replayed == 0

    def test_stats_merge(self):
        e = RecoveryEvent((1,), 0.0, 0.1, 0, 2, 0.0, 0.2)
        a = RecoveryStats(events=[e], checkpoints_taken=2, messages_dropped=3)
        b = RecoveryStats(checkpoints_taken=1, checkpoint_time_s=0.5,
                          messages_lost_to_dead=4)
        m = a.merge(b)
        assert m.checkpoints_taken == 3
        assert m.checkpoint_time_s == 0.5
        assert m.messages_dropped == 3
        assert m.messages_lost_to_dead == 4
        assert m.n_failures == 1
        assert m.steps_replayed == 2
        assert m.dead_procs == (1,)


# --------------------------------------------------------------------------- #
# disk run checkpoints for the real engines (PR 6)
# --------------------------------------------------------------------------- #
from repro.builder import small_water_box  # noqa: E402
from repro.md.engine import SequentialEngine  # noqa: E402
from repro.md.nonbonded import NonbondedOptions  # noqa: E402
from repro.runtime.checkpoint import (  # noqa: E402
    RunCheckpoint,
    load_run_checkpoint,
    restore_run_checkpoint,
    save_run_checkpoint,
)

RUN_OPTS = NonbondedOptions(cutoff=8.0)


@pytest.fixture(scope="module")
def water_base():
    return small_water_box(120, seed=11, relax=False)


def _fresh(base):
    s = base.copy()
    s.assign_velocities(300.0, seed=3)
    return s


class TestRunCheckpoint:
    def _sample(self, n=4, with_forces=True):
        rng = np.random.default_rng(0)
        return RunCheckpoint(
            step=7,
            positions=rng.normal(size=(n, 3)),
            velocities=rng.normal(size=(n, 3)),
            forces=rng.normal(size=(n, 3)) if with_forces else None,
            box=np.array([10.0, 11.0, 12.0]),
            nb_seq=21,
        )

    def test_npz_round_trip_is_exact(self):
        cp = self._sample()
        back = RunCheckpoint.from_npz_bytes(cp.to_npz_bytes())
        assert back.step == cp.step
        assert back.nb_seq == cp.nb_seq
        np.testing.assert_array_equal(back.positions, cp.positions)
        np.testing.assert_array_equal(back.velocities, cp.velocities)
        np.testing.assert_array_equal(back.forces, cp.forces)
        np.testing.assert_array_equal(back.box, cp.box)

    def test_round_trip_without_forces(self):
        back = RunCheckpoint.from_npz_bytes(
            self._sample(with_forces=False).to_npz_bytes()
        )
        assert back.forces is None

    def test_save_writes_atomically(self, tmp_path, water_base):
        path = tmp_path / "run.ckpt"
        with SequentialEngine(_fresh(water_base), options=RUN_OPTS) as eng:
            eng.step()
            save_run_checkpoint(path, eng)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["run.ckpt"]
        assert load_run_checkpoint(path).step == 1

    def test_load_corrupt_raises_valueerror(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(b"not an npz archive")
        with pytest.raises(ValueError, match="run.ckpt"):
            load_run_checkpoint(path)

    def test_load_missing_raises_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run_checkpoint(tmp_path / "absent.ckpt")

    def test_restore_rejects_wrong_atom_count(self, water_base):
        cp = self._sample(n=4)
        with SequentialEngine(_fresh(water_base), options=RUN_OPTS) as eng:
            with pytest.raises(ValueError, match="atom"):
                restore_run_checkpoint(eng, cp)


class TestResumeBitIdentical:
    def test_sequential_resume_matches_uninterrupted(self, water_base, tmp_path):
        s_ref = _fresh(water_base)
        with SequentialEngine(s_ref, options=RUN_OPTS) as eng:
            for _ in range(6):
                rep_ref = eng.step()

        path = tmp_path / "run.ckpt"
        s_a = _fresh(water_base)
        with SequentialEngine(
            s_a, options=RUN_OPTS, checkpoint_every=3, checkpoint_path=path
        ) as eng:
            for _ in range(3):
                eng.step()
            assert eng.n_checkpoints == 1

        s_b = _fresh(water_base)
        with SequentialEngine(s_b, options=RUN_OPTS) as eng:
            restore_run_checkpoint(eng, load_run_checkpoint(path))
            assert eng._step == 3
            for _ in range(3):
                rep_res = eng.step()

        np.testing.assert_array_equal(s_b.positions, s_ref.positions)
        np.testing.assert_array_equal(s_b.velocities, s_ref.velocities)
        assert rep_res.total == rep_ref.total

    def test_checkpoint_every_validation(self, water_base):
        with pytest.raises(ValueError):
            SequentialEngine(_fresh(water_base), options=RUN_OPTS, checkpoint_every=-1)
        with pytest.raises(ValueError):
            SequentialEngine(_fresh(water_base), options=RUN_OPTS, checkpoint_every=5)
