"""Deterministic fault injection: plans, parsing, and scheduler behavior."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.chare import Chare
from repro.runtime.faults import (
    MAX_RETRANSMITS,
    FaultPlan,
    MessageFaults,
    ProcessorFailure,
    SlowdownWindow,
)
from repro.runtime.machine import MachineModel
from repro.runtime.scheduler import Scheduler

MACHINE = MachineModel(
    name="t",
    cpu_factor=1.0,
    send_overhead_s=1e-4,
    recv_overhead_s=2e-4,
    pack_per_byte_s=1e-6,
    latency_s=5e-4,
    bandwidth_Bps=1e6,
    local_send_overhead_s=1e-5,
)


class Counter(Chare):
    category = "test"

    def __init__(self, cost=1e-3):
        super().__init__()
        self.cost = cost
        self.hits = 0

    def ping(self, tag=None):
        self.hits += 1
        return self.cost


class Relay(Chare):
    category = "test"

    def __init__(self, targets=(), rounds=0, cost=1e-3):
        super().__init__()
        self.targets = list(targets)
        self.rounds = rounds
        self.hits = 0
        self.cost = cost

    def ping(self, hops=0):
        self.hits += 1
        if hops > 0:
            for t in self.targets:
                self.send(t, "ping", {"hops": hops - 1}, size_bytes=200.0)
        return self.cost


# --------------------------------------------------------------------- #
# plan construction and validation
# --------------------------------------------------------------------- #
class TestPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            MessageFaults(drop_rate=1.5)
        with pytest.raises(ValueError):
            MessageFaults(delay_rate=-0.1)
        with pytest.raises(ValueError):
            MessageFaults(duplicate_rate=2.0)

    def test_slowdown_window_validation(self):
        with pytest.raises(ValueError):
            SlowdownWindow(0, 1.0, 0.5, 2.0)  # end before start
        with pytest.raises(ValueError):
            SlowdownWindow(0, 0.0, 1.0, 0.0)  # factor must be positive

    def test_active_flag(self):
        assert not MessageFaults().active
        assert MessageFaults(drop_rate=0.1).active
        assert MessageFaults(delay_rate=0.1).active
        assert MessageFaults(duplicate_rate=0.1).active


class TestParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7, kill=2@0.004, slow=1@0.1-0.2x3.0, "
            "drop=0.01, delay=0.02@1e-4, dup=0.005, retry=2e-5"
        )
        assert plan.seed == 7
        assert plan.failures == (ProcessorFailure(2, 0.004),)
        assert plan.slowdowns == (SlowdownWindow(1, 0.1, 0.2, 3.0),)
        mf = plan.message_faults
        assert mf.drop_rate == 0.01
        assert mf.delay_rate == 0.02
        assert mf.delay_s == 1e-4
        assert mf.duplicate_rate == 0.005
        assert mf.retry_base_s == 2e-5

    def test_empty_clauses_skipped(self):
        plan = FaultPlan.parse("seed=3,,kill=0@1.0,")
        assert plan.seed == 3
        assert len(plan.failures) == 1

    def test_bad_clause_rejected(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            FaultPlan.parse("kill")
        with pytest.raises(ValueError, match="unknown fault clause"):
            FaultPlan.parse("explode=1")

    def test_parse_roundtrips_through_behavior(self):
        a = FaultPlan.parse("seed=5,drop=0.5")
        b = FaultPlan(seed=5, message_faults=MessageFaults(drop_rate=0.5))
        for seq in range(50):
            assert a.message_fate(seq) == b.message_fate(seq)


class TestFate:
    def test_clean_plan_never_faults(self):
        plan = FaultPlan(seed=1)
        for seq in range(100):
            fate = plan.message_fate(seq)
            assert fate == (0, 0.0, False)

    def test_fate_is_deterministic(self):
        plan = FaultPlan.parse("seed=9,drop=0.2,delay=0.3@1e-4,dup=0.1")
        fates = [plan.message_fate(s) for s in range(200)]
        again = [plan.message_fate(s) for s in range(200)]
        assert fates == again

    def test_seed_changes_fates(self):
        a = FaultPlan.parse("seed=1,drop=0.3")
        b = FaultPlan.parse("seed=2,drop=0.3")
        assert any(a.message_fate(s) != b.message_fate(s) for s in range(100))

    def test_drop_rate_one_bounded_by_max_retransmits(self):
        plan = FaultPlan.parse("drop=1.0")
        for seq in range(20):
            fate = plan.message_fate(seq)
            assert fate.drops == MAX_RETRANSMITS

    def test_retransmit_delay_is_exponential(self):
        plan = FaultPlan.parse("retry=1e-5,drop=0.1")
        assert plan.retransmit_delay(0) == 0.0
        assert plan.retransmit_delay(1) == pytest.approx(1e-5)
        assert plan.retransmit_delay(3) == pytest.approx(7e-5)

    def test_slowdown_factor_multiplies_overlaps(self):
        plan = FaultPlan(
            slowdowns=(
                SlowdownWindow(0, 0.0, 1.0, 2.0),
                SlowdownWindow(0, 0.5, 1.5, 3.0),
                SlowdownWindow(1, 0.0, 1.0, 10.0),
            )
        )
        assert plan.slowdown_factor(0, 0.25) == 2.0
        assert plan.slowdown_factor(0, 0.75) == 6.0
        assert plan.slowdown_factor(0, 1.25) == 3.0
        assert plan.slowdown_factor(0, 2.0) == 1.0
        assert plan.slowdown_factor(2, 0.5) == 1.0


class TestShifted:
    def test_zero_offset_is_identity(self):
        plan = FaultPlan.parse("kill=0@1.0")
        assert plan.shifted(0.0) is plan

    def test_failures_rebased_and_dropped(self):
        plan = FaultPlan.parse("kill=0@1.0,kill=1@3.0")
        shifted = plan.shifted(2.0)
        assert shifted.failures == (ProcessorFailure(1, 1.0),)

    def test_windows_rebased_and_expired_dropped(self):
        plan = FaultPlan(
            slowdowns=(
                SlowdownWindow(0, 0.0, 1.0, 2.0),
                SlowdownWindow(0, 3.0, 4.0, 2.0),
            )
        )
        shifted = plan.shifted(2.0)
        assert shifted.slowdowns == (SlowdownWindow(0, 1.0, 2.0, 2.0),)


# --------------------------------------------------------------------- #
# scheduler integration
# --------------------------------------------------------------------- #
class TestSchedulerFailures:
    def test_kill_stops_execution_on_proc(self):
        plan = FaultPlan(failures=(ProcessorFailure(1, 0.0),))
        sched = Scheduler(2, MACHINE, fault_plan=plan)
        alive, dead = Counter(), Counter()
        oa = sched.register(alive, 0)
        od = sched.register(dead, 1)
        sched.inject(oa, "ping", {})
        sched.inject(od, "ping", {})
        sched.run()
        assert alive.hits == 1
        assert dead.hits == 0
        assert sched.dead_procs == {1}
        assert sched.failure_times[1] == 0.0
        assert sched.fault_stats["dead_dropped"] >= 1

    def test_register_on_dead_proc_refused(self):
        sched = Scheduler(2, MACHINE, initially_dead={1})
        with pytest.raises(ValueError):
            sched.register(Counter(), 1)

    def test_migrate_to_dead_proc_refused(self):
        sched = Scheduler(3, MACHINE, initially_dead={2})
        c = Counter()
        c.migratable = True
        oid = sched.register(c, 0)
        with pytest.raises(ValueError):
            sched.migrate(oid, 2)
        sched.migrate(oid, 1)  # live destination still fine
        assert sched.location_of(oid) == 1

    def test_all_dead_refused(self):
        with pytest.raises(ValueError):
            Scheduler(2, MACHINE, initially_dead={0, 1})

    def test_kill_before_start_time_applies_immediately(self):
        plan = FaultPlan(failures=(ProcessorFailure(1, 0.5),))
        sched = Scheduler(2, MACHINE, fault_plan=plan, start_time=1.0)
        assert 1 in sched.dead_procs
        assert sched.failure_times[1] == 1.0

    def test_slowdown_window_stretches_execution(self):
        plan = FaultPlan(slowdowns=(SlowdownWindow(0, 0.0, 10.0, 4.0),))
        for p, expected in ((None, 1e-3), (plan, 4e-3)):
            sched = Scheduler(1, MACHINE.with_overrides(recv_overhead_s=0.0),
                              fault_plan=p)
            c = Counter(cost=1e-3)
            sched.inject(sched.register(c, 0), "ping", {})
            end = sched.run()
            assert end == pytest.approx(expected)


class TestSchedulerMessageFaults:
    def _ring(self, sched, n=6, hops=3):
        """n relays in a ring, each forwarding for `hops` generations."""
        relays = [Relay(rounds=hops) for _ in range(n)]
        for i, r in enumerate(relays):
            sched.register(r, i % sched.n_procs)
        for i, r in enumerate(relays):
            r.targets = [relays[(i + 1) % n].object_id]
        sched.inject(relays[0].object_id, "ping", {"hops": hops})
        return relays

    def test_drops_delay_but_deliver(self):
        plan = FaultPlan.parse("seed=2,drop=0.5")
        clean = Scheduler(2, MACHINE)
        faulty = Scheduler(2, MACHINE, fault_plan=plan)
        a, b = self._ring(clean), self._ring(faulty)
        t_clean, t_faulty = clean.run(), faulty.run()
        # same deliveries, later finish
        assert [r.hits for r in a] == [r.hits for r in b]
        assert faulty.fault_stats["drops"] > 0
        assert t_faulty > t_clean

    def test_duplicates_suppressed(self):
        plan = FaultPlan.parse("seed=4,dup=1.0")
        sched = Scheduler(2, MACHINE, fault_plan=plan)
        relays = self._ring(sched)
        sched.run()
        # every logical message executed once despite a duplicate of each
        assert sum(r.hits for r in relays) == 4  # 1 injected + 3 hops
        assert sched.fault_stats["duplicates"] > 0
        assert (
            sched.fault_stats["suppressed_duplicates"]
            == sched.fault_stats["duplicates"]
        )

    def test_delay_adds_latency(self):
        plan = FaultPlan.parse("seed=6,delay=1.0@5e-3")
        clean = Scheduler(2, MACHINE)
        faulty = Scheduler(2, MACHINE, fault_plan=plan)
        self._ring(clean), self._ring(faulty)
        assert faulty.run() > clean.run()
        assert faulty.fault_stats["delays"] > 0


# --------------------------------------------------------------------- #
# the determinism property (hypothesis)
# --------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    drop=st.floats(0.0, 0.6),
    delay=st.floats(0.0, 0.6),
    dup=st.floats(0.0, 0.6),
)
def test_same_plan_gives_identical_event_trace(seed, drop, delay, dup):
    """Two runs with the same FaultPlan produce byte-identical event logs."""
    plan = FaultPlan(
        seed=seed,
        message_faults=MessageFaults(
            drop_rate=drop, delay_rate=delay, duplicate_rate=dup
        ),
    )

    def run_once():
        sched = Scheduler(3, MACHINE, fault_plan=plan, record_events=True)
        relays = [Relay(rounds=2) for _ in range(5)]
        for i, r in enumerate(relays):
            sched.register(r, i % 3)
        for i, r in enumerate(relays):
            r.targets = [relays[(i + 1) % 5].object_id,
                         relays[(i + 2) % 5].object_id]
        sched.inject(relays[0].object_id, "ping", {"hops": 2})
        sched.run()
        return list(sched.event_log)

    assert run_once() == run_once()
