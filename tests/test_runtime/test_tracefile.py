"""Trace dump/load round trip."""

import numpy as np
import pytest

from repro.runtime.trace import TraceLog
from repro.runtime.tracefile import dump_trace, load_trace


def sample_trace():
    t = TraceLog(2, full=True)
    t.record_execution(0, 1, "a", "nonbonded", 0.0, 0.5, work=0.4,
                       send_overhead=0.06, recv_overhead=0.04)
    t.record_execution(1, 2, "b", "bonded", 0.2, 0.3, work=0.3)
    t.record_send(128.0)
    return t


class TestRoundTrip:
    def test_records_preserved(self, tmp_path):
        t = sample_trace()
        path = tmp_path / "trace.json"
        dump_trace(t, path)
        t2 = load_trace(path)
        assert len(t2.records) == 2
        r = t2.records[0]
        assert (r.proc, r.label, r.category) == (0, "a", "nonbonded")
        assert r.duration == pytest.approx(0.5)
        assert r.send_overhead == pytest.approx(0.06)

    def test_summary_preserved(self, tmp_path):
        t = sample_trace()
        path = tmp_path / "trace.json"
        dump_trace(t, path)
        s1 = t.summary()
        s2 = load_trace(path).summary()
        np.testing.assert_allclose(s2.busy_time_per_proc, s1.busy_time_per_proc)
        assert s2.messages_sent == s1.messages_sent
        assert s2.bytes_sent == s1.bytes_sent

    def test_analyses_work_on_loaded_trace(self, tmp_path):
        from repro.analysis.timeline import render_timeline

        t = sample_trace()
        path = tmp_path / "trace.json"
        dump_trace(t, path)
        out = render_timeline(load_trace(path), [0, 1], 0.0, 1.0, width=20)
        assert "N" in out and "B" in out

    def test_version_check(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_end_to_end_simulation_trace(self, assembly, tmp_path):
        from repro.core.problem import DecomposedProblem
        from repro.core.simulation import (
            DEFAULT_COST_MODEL,
            ParallelSimulation,
            SimulationConfig,
        )

        problem = DecomposedProblem.build(assembly, DEFAULT_COST_MODEL)
        cfg = SimulationConfig(n_procs=4, trace_final_phase=True)
        res = ParallelSimulation(assembly, cfg, problem=problem).run()
        path = tmp_path / "run.json"
        dump_trace(res.final.trace, path)
        loaded = load_trace(path)
        assert len(loaded.records) == len(res.final.trace.records)
