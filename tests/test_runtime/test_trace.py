"""Trace log and summary profiles."""

import numpy as np
import pytest

from repro.runtime.trace import TraceLog


def fill(trace: TraceLog):
    trace.record_execution(0, 1, "a", "nonbonded", 0.0, 0.5, work=0.4,
                           send_overhead=0.06, recv_overhead=0.04)
    trace.record_execution(1, 2, "b", "bonded", 0.2, 0.3, work=0.3)
    trace.record_execution(0, 1, "a", "nonbonded", 0.5, 0.1, work=0.1)


class TestTraceLog:
    def test_summary_totals(self):
        t = TraceLog(2, full=True)
        fill(t)
        s = t.summary()
        assert s.busy_time_per_proc[0] == pytest.approx(0.6)
        assert s.busy_time_per_proc[1] == pytest.approx(0.3)
        assert s.time_per_category["nonbonded"] == pytest.approx(0.5)  # work only
        assert s.count_per_category["nonbonded"] == 2
        assert s.send_overhead_per_proc[0] == pytest.approx(0.06)
        assert s.recv_overhead_per_proc[0] == pytest.approx(0.04)

    def test_full_flag_controls_records(self):
        t = TraceLog(1, full=False)
        t.record_execution(0, 0, "x", "c", 0.0, 1.0)
        assert t.records == []
        t2 = TraceLog(1, full=True)
        t2.record_execution(0, 0, "x", "c", 0.0, 1.0)
        assert len(t2.records) == 1

    def test_durations_by_category(self):
        t = TraceLog(2, full=True)
        fill(t)
        d = t.durations_by_category("nonbonded")
        np.testing.assert_allclose(sorted(d), [0.1, 0.5])

    def test_records_in_window(self):
        t = TraceLog(2, full=True)
        fill(t)
        assert len(t.records_in_window(0.0, 0.2)) == 1
        assert len(t.records_in_window(0.0, 0.6)) == 3
        assert len(t.records_in_window(0.55, 0.56)) == 1

    def test_proc_timeline_sorted(self):
        t = TraceLog(2, full=True)
        fill(t)
        tl = t.proc_timeline(0)
        assert [r.start for r in tl] == sorted(r.start for r in tl)
        assert all(r.proc == 0 for r in tl)

    def test_reset(self):
        t = TraceLog(2, full=True)
        fill(t)
        t.record_send(100.0)
        t.reset()
        s = t.summary()
        assert s.busy_time_per_proc.sum() == 0.0
        assert s.messages_sent == 0
        assert t.records == []

    def test_utilization(self):
        t = TraceLog(2)
        fill(t)
        u = t.summary().utilization(1.0)
        np.testing.assert_allclose(u, [0.6, 0.3])
