"""The LB database."""

import pytest

from repro.runtime.stats import LBDatabase


class TestLBDatabase:
    def test_load_accumulation(self):
        db = LBDatabase()
        db.record_execution(5, True, 0, 0.2)
        db.record_execution(5, True, 0, 0.3)
        snap = db.snapshot()
        assert snap.objects[5].load == pytest.approx(0.5)
        assert snap.objects[5].invocations == 2

    def test_background_only_nonmigratable(self):
        db = LBDatabase()
        db.record_execution(1, True, 0, 1.0)
        db.record_execution(2, False, 0, 0.25)
        snap = db.snapshot()
        assert snap.background_load == {0: 0.25}

    def test_comm_graph(self):
        db = LBDatabase()
        db.record_send(1, 2, 100.0)
        db.record_send(1, 2, 50.0)
        db.record_send(2, 3, 10.0)
        snap = db.snapshot()
        edges = {(e.src, e.dst): (e.messages, e.bytes) for e in snap.edges}
        assert edges[(1, 2)] == (2, 150.0)
        assert edges[(2, 3)] == (1, 10.0)

    def test_per_step_normalization(self):
        db = LBDatabase()
        db.record_execution(1, True, 0, 1.0)
        db.mark_step()
        db.mark_step()
        snap = db.snapshot()
        assert snap.per_step(snap.objects[1].load) == pytest.approx(0.5)

    def test_migratable_objects_filter(self):
        db = LBDatabase()
        db.record_execution(1, True, 0, 1.0)
        db.record_execution(2, False, 0, 1.0)
        snap = db.snapshot()
        assert [o.object_id for o in snap.migratable_objects()] == [1]

    def test_snapshot_is_a_copy(self):
        db = LBDatabase()
        db.record_execution(1, True, 0, 1.0)
        snap = db.snapshot()
        db.record_execution(1, True, 0, 1.0)
        assert snap.objects[1].load == pytest.approx(1.0)

    def test_reset(self):
        db = LBDatabase()
        db.record_execution(1, True, 0, 1.0)
        db.mark_step()
        db.reset()
        snap = db.snapshot()
        assert snap.objects == {}
        assert snap.measured_steps == 0
