"""Message and priority semantics."""

from repro.runtime.message import Message, Priority


class TestMessage:
    def test_sort_key_priority_then_fifo(self):
        a = Message(0, "m", priority=Priority.NORMAL)
        a.seq = 5
        b = Message(0, "m", priority=Priority.HIGH)
        b.seq = 9
        c = Message(0, "m", priority=Priority.NORMAL)
        c.seq = 7
        order = sorted([a, b, c], key=lambda m: m.sort_key())
        assert order == [b, a, c]

    def test_priority_values_ordered(self):
        assert Priority.HIGH < Priority.NORMAL < Priority.LOW

    def test_defaults(self):
        m = Message(3, "go")
        assert m.data == {}
        assert m.size_bytes == 64.0
        assert m.src_object == -1
