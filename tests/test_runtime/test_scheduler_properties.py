"""Scheduler conservation properties (hypothesis-driven).

Random workloads of chares pinging each other must satisfy accounting
invariants regardless of topology: every message sent is executed exactly
once, busy time decomposes exactly into work + overheads, and the makespan
bounds every processor's busy time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.chare import Chare
from repro.runtime.machine import MachineModel
from repro.runtime.scheduler import Scheduler

MACHINE = MachineModel(
    name="t",
    cpu_factor=1.0,
    send_overhead_s=1e-4,
    recv_overhead_s=2e-4,
    pack_per_byte_s=1e-6,
    latency_s=5e-4,
    bandwidth_Bps=1e6,
    local_send_overhead_s=1e-5,
)


class Node(Chare):
    category = "node"

    def __init__(self, cost, fanout_targets):
        super().__init__()
        self.cost = cost
        self.fanout_targets = fanout_targets
        self.received = 0

    def ping(self, hops=0):
        self.received += 1
        if hops > 0:
            for t in self.fanout_targets:
                self.send(t, "ping", {"hops": hops - 1}, size_bytes=100.0)
        return self.cost


def build_random_workload(n_procs, n_nodes, fanout, hops, seed):
    rng = np.random.default_rng(seed)
    sched = Scheduler(n_procs, MACHINE)
    nodes = []
    for i in range(n_nodes):
        node = Node(float(rng.exponential(1e-3)), [])
        sched.register(node, int(rng.integers(n_procs)))
        nodes.append(node)
    for node in nodes:
        k = min(fanout, n_nodes - 1)
        targets = rng.choice(
            [m.object_id for m in nodes if m is not node], size=k, replace=False
        )
        node.fanout_targets = [int(t) for t in targets]
    sched.inject(nodes[0].object_id, "ping", {"hops": hops})
    return sched, nodes


class TestConservation:
    @given(
        st.integers(1, 6),
        st.integers(2, 10),
        st.integers(1, 3),
        st.integers(0, 3),
        st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_message_executed_once(self, n_procs, n_nodes, fanout, hops, seed):
        sched, nodes = build_random_workload(n_procs, n_nodes, fanout, hops, seed)
        sched.run()
        assert sched.quiescent()
        total_received = sum(n.received for n in nodes)
        # injected 1 + all sends recorded by the trace
        assert total_received == 1 + sched.trace.messages_sent

    @given(st.integers(1, 6), st.integers(2, 8), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_busy_decomposition_exact(self, n_procs, n_nodes, seed):
        sched, _ = build_random_workload(n_procs, n_nodes, 2, 2, seed)
        sched.run()
        s = sched.trace.summary()
        np.testing.assert_allclose(
            s.busy_time_per_proc,
            s.work_per_proc + s.send_overhead_per_proc + s.recv_overhead_per_proc,
            rtol=1e-12,
            atol=1e-15,
        )

    @given(st.integers(2, 6), st.integers(3, 8), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_makespan_bounds_busy_time(self, n_procs, n_nodes, seed):
        sched, _ = build_random_workload(n_procs, n_nodes, 2, 2, seed)
        makespan = sched.run()
        busy = sched.trace.summary().busy_time_per_proc
        assert np.all(busy <= makespan + 1e-12)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, seed):
        s1, _ = build_random_workload(4, 6, 2, 2, seed)
        s2, _ = build_random_workload(4, 6, 2, 2, seed)
        t1 = s1.run()
        t2 = s2.run()
        assert t1 == t2
        np.testing.assert_array_equal(
            s1.trace.summary().busy_time_per_proc,
            s2.trace.summary().busy_time_per_proc,
        )
