"""The discrete-event chare scheduler: ordering, costs, overlap, migration."""

import pytest

from repro.runtime.chare import Chare
from repro.runtime.machine import ASCI_RED, MachineModel
from repro.runtime.message import Priority
from repro.runtime.scheduler import Scheduler

#: zero-overhead machine so tests reason about pure handler costs
IDEAL = MachineModel(
    name="ideal",
    cpu_factor=1.0,
    send_overhead_s=0.0,
    recv_overhead_s=0.0,
    pack_per_byte_s=0.0,
    latency_s=0.0,
    bandwidth_Bps=1e30,
    local_send_overhead_s=0.0,
)


class Recorder(Chare):
    category = "test"

    def __init__(self, cost=0.0):
        super().__init__()
        self.cost = cost
        self.log = []

    def ping(self, tag=None):
        self.log.append((tag, self.runtime.now))
        return self.cost

    def ping_and_forward(self, dest=None):
        self.log.append(("fwd", self.runtime.now))
        if dest is not None:
            self.send(dest, "ping", {"tag": "forwarded"})
        return self.cost


class TestBasics:
    def test_register_and_locate(self):
        sched = Scheduler(2, IDEAL)
        c = Recorder()
        oid = sched.register(c, 1)
        assert sched.location_of(oid) == 1
        assert sched.object(oid) is c

    def test_register_bad_proc(self):
        sched = Scheduler(2, IDEAL)
        with pytest.raises(ValueError):
            sched.register(Recorder(), 5)

    def test_inject_and_run(self):
        sched = Scheduler(1, IDEAL)
        c = Recorder()
        oid = sched.register(c, 0)
        sched.inject(oid, "ping", {"tag": "x"})
        sched.run()
        assert c.log == [("x", 0.0)]
        assert sched.quiescent()

    def test_execution_advances_clock_by_cost(self):
        sched = Scheduler(1, IDEAL)
        a, b = Recorder(cost=1.0), Recorder()
        oa = sched.register(a, 0)
        ob = sched.register(b, 0)
        sched.inject(oa, "ping_and_forward", {"dest": ob})
        sched.run()
        # b's handler starts after a's 1.0s execution completes
        assert b.log[0][1] == pytest.approx(1.0)

    def test_cpu_factor_scales_duration(self):
        machine = IDEAL.with_overrides(cpu_factor=0.5)
        sched = Scheduler(1, machine)
        a, b = Recorder(cost=1.0), Recorder()
        oa, ob = sched.register(a, 0), sched.register(b, 0)
        sched.inject(oa, "ping_and_forward", {"dest": ob})
        sched.run()
        assert b.log[0][1] == pytest.approx(0.5)

    def test_serial_execution_on_one_processor(self):
        sched = Scheduler(1, IDEAL)
        a = Recorder(cost=2.0)
        b = Recorder(cost=2.0)
        oa, ob = sched.register(a, 0), sched.register(b, 0)
        sched.inject(oa, "ping", {"tag": 1})
        sched.inject(ob, "ping", {"tag": 2})
        sched.run()
        assert a.log[0][1] == 0.0
        assert b.log[0][1] == pytest.approx(2.0)  # waits for the processor

    def test_parallel_execution_on_two_processors(self):
        sched = Scheduler(2, IDEAL)
        a = Recorder(cost=2.0)
        b = Recorder(cost=2.0)
        oa, ob = sched.register(a, 0), sched.register(b, 1)
        sched.inject(oa, "ping", {"tag": 1})
        sched.inject(ob, "ping", {"tag": 2})
        sched.run()
        assert a.log[0][1] == 0.0
        assert b.log[0][1] == 0.0  # truly concurrent


class TestPriorities:
    def test_high_priority_jumps_queue(self):
        sched = Scheduler(1, IDEAL)
        busy = Recorder(cost=1.0)
        lo, hi = Recorder(cost=0.5), Recorder(cost=0.5)
        ob = sched.register(busy, 0)
        ol = sched.register(lo, 0)
        oh = sched.register(hi, 0)
        sched.inject(ob, "ping", {"tag": "busy"})  # occupies proc until t=1
        sched.inject(ol, "ping", {"tag": "low"}, priority=Priority.LOW)
        sched.inject(oh, "ping", {"tag": "high"}, priority=Priority.HIGH)
        sched.run()
        assert hi.log[0][1] < lo.log[0][1]

    def test_fifo_within_priority(self):
        sched = Scheduler(1, IDEAL)
        busy = Recorder(cost=1.0)
        a, b = Recorder(cost=0.5), Recorder(cost=0.5)
        sched.inject(sched.register(busy, 0), "ping", {})
        oa, ob = sched.register(a, 0), sched.register(b, 0)
        sched.inject(oa, "ping", {"tag": "first"})
        sched.inject(ob, "ping", {"tag": "second"})
        sched.run()
        assert a.log[0][1] < b.log[0][1]


class TestCommunicationCosts:
    def test_latency_delays_remote_delivery(self):
        machine = IDEAL.with_overrides(latency_s=0.25)
        sched = Scheduler(2, machine)
        a, b = Recorder(cost=0.0), Recorder()
        oa, ob = sched.register(a, 0), sched.register(b, 1)
        sched.inject(oa, "ping_and_forward", {"dest": ob})
        sched.run()
        assert b.log[0][1] == pytest.approx(0.25)

    def test_bandwidth_delays_large_messages(self):
        machine = IDEAL.with_overrides(bandwidth_Bps=1000.0)

        class BigSender(Chare):
            def go(self, dest=None):
                self.send(dest, "ping", {"tag": "big"}, size_bytes=500.0)
                return 0.0

        sched = Scheduler(2, machine)
        sender, receiver = BigSender(), Recorder()
        os_, or_ = sched.register(sender, 0), sched.register(receiver, 1)
        sched.inject(os_, "go", {"dest": or_})
        sched.run()
        assert receiver.log[0][1] == pytest.approx(0.5)  # 500 B / 1000 B/s

    def test_send_overhead_charged_to_sender(self):
        machine = IDEAL.with_overrides(send_overhead_s=0.1)
        sched = Scheduler(2, machine)
        a = Recorder(cost=1.0)
        b = Recorder()
        after = Recorder()
        oa, ob = sched.register(a, 0), sched.register(b, 1)
        oafter = sched.register(after, 0)
        sched.inject(oa, "ping_and_forward", {"dest": ob})
        sched.inject(oafter, "ping", {"tag": "queued"}, priority=Priority.LOW)
        sched.run()
        # sender busy for cost (1.0) + send overhead (0.1)
        assert after.log[0][1] == pytest.approx(1.1)

    def test_recv_overhead_charged_to_receiver(self):
        machine = IDEAL.with_overrides(recv_overhead_s=0.2)
        sched = Scheduler(1, machine)
        a, b = Recorder(cost=0.0), Recorder(cost=0.0)
        oa, ob = sched.register(a, 0), sched.register(b, 0)
        sched.inject(oa, "ping", {"tag": 1})
        sched.inject(ob, "ping", {"tag": 2})
        sched.run()
        assert b.log[0][1] == pytest.approx(0.2)  # a's recv overhead serializes


class TestLocalCall:
    def test_local_call_synchronous(self):
        sched = Scheduler(1, IDEAL)

        class Caller(Chare):
            def go(self, dest=None):
                self.result = self.local_call(dest, "ping", tag="sync")
                return 0.0

        caller, callee = Caller(), Recorder(cost=0.0)
        oc = sched.register(caller, 0)
        od = sched.register(callee, 0)
        sched.inject(oc, "go", {"dest": od})
        sched.run()
        assert callee.log == [("sync", 0.0)]

    def test_local_call_cross_processor_rejected(self):
        sched = Scheduler(2, IDEAL)

        class Caller(Chare):
            def go(self, dest=None):
                self.local_call(dest, "ping", tag="x")
                return 0.0

        oc = sched.register(Caller(), 0)
        od = sched.register(Recorder(), 1)
        sched.inject(oc, "go", {"dest": od})
        with pytest.raises(RuntimeError):
            sched.run()


class TestMigration:
    def test_migrate_moves_object(self):
        sched = Scheduler(2, IDEAL)
        c = Recorder()
        c.migratable = True
        oid = sched.register(c, 0)
        sched.migrate(oid, 1)
        assert sched.location_of(oid) == 1

    def test_migrate_nonmigratable_rejected(self):
        sched = Scheduler(2, IDEAL)
        oid = sched.register(Recorder(), 0)
        with pytest.raises(ValueError):
            sched.migrate(oid, 1)

    def test_message_forwarded_after_migration(self):
        """A message routed to the old processor is transparently forwarded."""
        machine = IDEAL.with_overrides(latency_s=0.1)
        sched = Scheduler(2, machine)

        target = Recorder()
        target.migratable = True
        ot = sched.register(target, 1)

        class Sender(Chare):
            def go(self, dest=None):
                self.send(dest, "ping", {"tag": "wandering"})
                return 0.0

        os_ = sched.register(Sender(), 0)
        sched.inject(os_, "go", {"dest": ot})
        # migrate while the message is in flight
        sched.migrate(ot, 0)
        sched.run()
        assert target.log[0][0] == "wandering"


class TestInstrumentation:
    def test_trace_accumulates_busy_time(self):
        sched = Scheduler(1, IDEAL)
        oid = sched.register(Recorder(cost=0.7), 0)
        sched.inject(oid, "ping", {})
        sched.run()
        assert sched.trace.summary().busy_time_per_proc[0] == pytest.approx(0.7)

    def test_lb_database_records_loads(self):
        sched = Scheduler(1, IDEAL)
        c = Recorder(cost=0.3)
        c.migratable = True
        oid = sched.register(c, 0)
        sched.inject(oid, "ping", {})
        sched.inject(oid, "ping", {})
        sched.run()
        snap = sched.lb_db.snapshot()
        assert snap.objects[oid].load == pytest.approx(0.6)
        assert snap.objects[oid].invocations == 2
        assert snap.objects[oid].migratable

    def test_nonmigratable_counts_as_background(self):
        sched = Scheduler(1, IDEAL)
        oid = sched.register(Recorder(cost=0.4), 0)
        sched.inject(oid, "ping", {})
        sched.run()
        snap = sched.lb_db.snapshot()
        assert snap.background_load[0] == pytest.approx(0.4)

    def test_instrumentation_gate(self):
        sched = Scheduler(1, IDEAL)
        oid = sched.register(Recorder(cost=0.4), 0)
        sched.set_instrumentation(False)
        sched.inject(oid, "ping", {})
        sched.run()
        assert sched.trace.summary().busy_time_per_proc[0] == 0.0


class TestControl:
    def test_control_delivered_at_completion_time(self):
        sched = Scheduler(1, IDEAL)
        events = []
        sched.set_control_handler(lambda t, payload: events.append((t, payload)))

        class Notifier(Chare):
            def go(self):
                self.runtime.post_control("done")
                return 0.5

        oid = sched.register(Notifier(), 0)
        sched.inject(oid, "go", {})
        sched.run()
        assert events == [(0.5, "done")]
