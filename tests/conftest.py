"""Shared fixtures: small systems that build in well under a second.

The giant paper benchmarks (92k/206k atoms) are exercised only by the
benchmark harness, not the unit tests; tests use miniature systems with the
same structure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.builder import small_water_box, tiny_peptide
from repro.builder.benchmarks import mini_assembly


@pytest.fixture(scope="session")
def water64():
    """A relaxed 64-molecule water box (192 atoms)."""
    return small_water_box(64, seed=3)


@pytest.fixture(scope="session")
def water100():
    """A relaxed 100-molecule water box (300 atoms)."""
    return small_water_box(100, seed=4)


@pytest.fixture(scope="session")
def peptide():
    """A 5-residue vacuum peptide."""
    return tiny_peptide(5, seed=11)


@pytest.fixture(scope="session")
def assembly():
    """The 3,100-atom protein+lipid+water mini assembly (2x2x2 patches)."""
    return mini_assembly()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
