"""Backend registry semantics: selection, fallback, self-check, constants.

The registry caches its resolved default and its numba load attempt, so
every test that touches selection state goes through
``repro.backend._reset_for_testing`` on both sides (the autouse fixture).
"""

import warnings

import numpy as np
import pytest

import repro.backend as B
from repro.backend import (
    ENV_VAR,
    KernelBackend,
    available_backends,
    backend_status,
    default_backend,
    get_backend,
    parity_selfcheck,
    set_default_backend,
)
from repro.backend import reference as ref

HAS_NUMBA = "numba" in available_backends()


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    B._reset_for_testing()
    yield
    B._reset_for_testing()


# --------------------------------------------------------------------- #
# selection
# --------------------------------------------------------------------- #
class TestSelection:
    def test_numpy_always_available(self):
        be = get_backend("numpy")
        assert be.name == "numpy"
        assert not be.compiled

    def test_instance_passthrough(self):
        be = get_backend("numpy")
        assert get_backend(be) is be

    def test_none_resolves_session_default(self):
        assert get_backend(None) is default_backend()

    def test_default_is_cached(self):
        assert default_backend() is default_backend()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("fortran")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        B._reset_for_testing()
        assert default_backend().name == "numpy"

    def test_set_default_backend_overrides_and_resets(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "auto")
        be = set_default_backend("numpy")
        assert be.name == "numpy"
        assert default_backend() is be
        # None re-resolves from the environment
        again = set_default_backend(None)
        assert again is default_backend()

    def test_auto_never_raises(self):
        # regardless of whether numba is installed, auto must resolve
        assert get_backend("auto").name in ("numpy", "numba")

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed on this host")
    def test_explicit_numba_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="numba backend unavailable"):
            be = get_backend("numba")
        assert be.name == "numpy"

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed on this host")
    def test_auto_falls_back_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_backend("auto").name == "numpy"

    @pytest.mark.skipif(not HAS_NUMBA, reason="needs numba")
    def test_numba_selected_when_available(self):
        be = get_backend("numba")
        assert be.name == "numba"
        assert be.compiled
        assert get_backend("auto") is be

    def test_backend_status_shape(self):
        status = backend_status()
        assert "numpy" in status["available"]
        assert status["default"] in ("numpy", "numba")
        assert isinstance(status["numba_ok"], bool)


# --------------------------------------------------------------------- #
# parity self-check
# --------------------------------------------------------------------- #
class TestSelfCheck:
    def test_reference_passes_its_own_check(self):
        ok, detail = parity_selfcheck(ref.build_backend())
        assert ok, detail

    def test_broken_energy_detected(self):
        good = ref.build_backend()

        def bad_nb(pos, box, i, j, eps, rmin, qq, cut, sw, forces, si, sj):
            e_lj, e_el, n = ref.nb_pairs(
                pos, box, i, j, eps, rmin, qq, cut, sw, forces, si, sj
            )
            return e_lj * (1.0 + 1e-6), e_el, n  # 1e-6 relative >> 1e-9 tol

        broken = KernelBackend(
            name="broken",
            compiled=True,
            nb_pairs=bad_nb,
            pair_mask=good.pair_mask,
            segment_add=good.segment_add,
            ewald_real=good.ewald_real,
            ewald_recip=good.ewald_recip,
        )
        ok, detail = parity_selfcheck(broken, good)
        assert not ok
        assert detail  # says *what* diverged

    def test_broken_forces_detected(self):
        good = ref.build_backend()

        def bad_nb(pos, box, i, j, eps, rmin, qq, cut, sw, forces, si, sj):
            out = ref.nb_pairs(
                pos, box, i, j, eps, rmin, qq, cut, sw, forces, si, sj
            )
            # skew one row by 1e-6 of the global force scale (the self-check
            # tolerance is relative to the largest force component)
            forces[0, 0] += 1e-6 * float(np.abs(forces).max())
            return out

        broken = KernelBackend(
            name="broken",
            compiled=True,
            nb_pairs=bad_nb,
            pair_mask=good.pair_mask,
            segment_add=good.segment_add,
            ewald_real=good.ewald_real,
            ewald_recip=good.ewald_recip,
        )
        ok, _ = parity_selfcheck(broken, good)
        assert not ok

    def test_raising_kernel_is_caught_not_propagated(self):
        good = ref.build_backend()

        def explode(*_a, **_k):
            raise RuntimeError("compile error")

        broken = KernelBackend(
            name="broken",
            compiled=True,
            nb_pairs=explode,
            pair_mask=good.pair_mask,
            segment_add=good.segment_add,
            ewald_real=good.ewald_real,
            ewald_recip=good.ewald_recip,
        )
        ok, detail = parity_selfcheck(broken)
        assert not ok
        assert "compile error" in detail or "RuntimeError" in detail


# --------------------------------------------------------------------- #
# duplicated constants (cycle-free import discipline)
# --------------------------------------------------------------------- #
class TestConstantGuards:
    """repro.backend must not import repro.md, so two md constants are
    duplicated in the reference module; these guards pin them together."""

    def test_coulomb_constant_matches_md(self):
        from repro.md.constants import COULOMB_CONSTANT

        assert ref.COULOMB_CONSTANT == COULOMB_CONSTANT

    def test_bincount_heuristic_matches_scatter(self):
        from repro.md import scatter

        assert scatter._BINCOUNT_MIN_FILL == ref._BINCOUNT_MIN_FILL

    def test_backend_package_imports_standalone(self):
        # the real check is in the subprocess-free form: the package's own
        # module graph must not reach repro.md (which imports it back)
        import sys
        import subprocess

        code = (
            "import sys, repro.backend; "
            "assert not any(m.startswith('repro.md') for m in sys.modules), "
            "sorted(m for m in sys.modules if m.startswith('repro.md'))"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr


# --------------------------------------------------------------------- #
# synthetic problem
# --------------------------------------------------------------------- #
class TestSyntheticProblem:
    def test_deterministic(self):
        from repro.backend import synthetic_problem

        a, b = synthetic_problem(), synthetic_problem()
        for key in a:
            if isinstance(a[key], np.ndarray):
                assert np.array_equal(a[key], b[key]), key
            else:
                assert a[key] == b[key], key
