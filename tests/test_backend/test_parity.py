"""Cross-backend parity sweep over real builder systems plus edge cases.

Every available backend must agree with the numpy reference to 1e-9
(relative to the result's own scale) on full non-bonded and Ewald
evaluations, and must be bit-identical to *itself* across repeat runs.
On a numba-free host this degenerates to a numpy self-consistency suite;
the numba CI job runs the full cross-backend comparison.
"""

import numpy as np
import pytest

from repro.backend import available_backends, get_backend
from repro.builder import mini_assembly, skewed_water_box, small_water_box
from repro.md.ewald import EwaldOptions, clear_kspace_cache, compute_ewald
from repro.md.nonbonded import NonbondedOptions, compute_nonbonded

BACKENDS = available_backends()
NUMPY = get_backend("numpy")

#: (label, system factory, nonbonded cutoff) — a plain water box, a mixed
#: protein/lipid/ion assembly (exercises exclusions and 1-4 scaling), and
#: a skewed-density box (uneven cell occupancy)
SYSTEMS = [
    ("water", lambda: small_water_box(50, seed=3, relax=False), 6.0),
    ("assembly", lambda: mini_assembly(seed=1), 8.0),
    ("skewed", lambda: skewed_water_box(60, seed=5, skew=3.0), 6.0),
]


def _rel_close(a, b, tol=1e-9):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    scale = max(1.0, float(np.max(np.abs(a))) if a.size else 0.0)
    return np.all(np.isfinite(a)) and np.all(np.abs(a - b) <= tol * scale)


def _eval_nonbonded(system, cutoff, backend):
    res = compute_nonbonded(
        system, NonbondedOptions(cutoff=cutoff), backend=get_backend(backend)
    )
    return res.energy_lj, res.energy_elec, res.n_pairs, res.forces


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("label,factory,cutoff", SYSTEMS, ids=[s[0] for s in SYSTEMS])
class TestNonbondedParity:
    def test_matches_reference(self, backend, label, factory, cutoff):
        system = factory()
        e_lj, e_el, n_pairs, forces = _eval_nonbonded(system, cutoff, backend)
        r_lj, r_el, r_pairs, r_forces = _eval_nonbonded(system, cutoff, NUMPY)
        assert n_pairs == r_pairs
        assert _rel_close(e_lj, r_lj), (e_lj, r_lj)
        assert _rel_close(e_el, r_el), (e_el, r_el)
        assert _rel_close(forces, r_forces)

    def test_repeat_runs_bit_identical(self, backend, label, factory, cutoff):
        system = factory()
        a = _eval_nonbonded(system, cutoff, backend)
        b = _eval_nonbonded(system, cutoff, backend)
        assert a[0] == b[0] and a[1] == b[1] and a[2] == b[2]
        assert np.array_equal(a[3], b[3])


@pytest.mark.parametrize("backend", BACKENDS)
class TestEwaldParity:
    def _eval(self, system, backend, kmax=4):
        clear_kspace_cache()
        opts = EwaldOptions(alpha=0.35, kmax=kmax, cutoff=7.0)
        return compute_ewald(system, opts, backend=get_backend(backend))

    def test_water_box_matches_reference(self, backend):
        system = small_water_box(30, seed=9, relax=False)
        res = self._eval(system, backend)
        res_ref = self._eval(system, NUMPY)
        assert _rel_close(res.energy_real, res_ref.energy_real)
        assert _rel_close(res.energy_recip, res_ref.energy_recip)
        assert _rel_close(res.forces, res_ref.forces)

    def test_repeat_runs_bit_identical(self, backend):
        system = small_water_box(30, seed=9, relax=False)
        a = self._eval(system, backend)
        b = self._eval(system, backend)
        assert a.energy_real == b.energy_real
        assert a.energy_recip == b.energy_recip
        assert np.array_equal(a.forces, b.forces)

    def test_kmax_zero_empty_kvectors(self, backend):
        # kmax=0 leaves no reciprocal vectors at all: energy must be 0.0,
        # not a crash on the empty table
        system = small_water_box(10, seed=2, relax=False)
        res = self._eval(system, backend, kmax=0)
        assert res.energy_recip == 0.0
        assert np.all(np.isfinite(res.forces))


@pytest.mark.parametrize("backend", BACKENDS)
class TestEdgeCases:
    def test_zero_pair_box(self, backend):
        # two far-apart atoms: candidate enumeration finds nothing in range
        from repro.builder.ions import ensure_ion_types
        from repro.md.forcefield import default_forcefield
        from repro.md.system import MolecularSystem
        from repro.md.topology import Topology

        ff = default_forcefield()
        ensure_ion_types(ff)
        ti = ff.atom_type_index("SOD")
        system = MolecularSystem(
            positions=np.array([[1.0, 1.0, 1.0], [25.0, 25.0, 25.0]]),
            velocities=np.zeros((2, 3)),
            charges=np.array([1.0, -1.0]),
            type_indices=np.array([ti, ti]),
            topology=Topology(),
            forcefield=ff,
            box=np.array([50.0, 50.0, 50.0]),
            name="two-far",
        )
        e_lj, e_el, n_pairs, forces = _eval_nonbonded(system, 6.0, backend)
        assert n_pairs == 0
        assert e_lj == 0.0 and e_el == 0.0
        assert np.all(forces == 0.0)

    def test_single_cell_grid(self, backend):
        # box barely larger than the cutoff: the cell grid degenerates to
        # one cell and every pair is a candidate
        system = small_water_box(4, seed=1, relax=False)
        cutoff = float(min(system.box)) * 0.45
        e_lj, e_el, n_pairs, forces = _eval_nonbonded(system, cutoff, backend)
        ref = _eval_nonbonded(system, cutoff, NUMPY)
        assert n_pairs == ref[2]
        assert _rel_close(forces, ref[3])

    def test_scaled_14_pairs(self, backend):
        # the assembly carries real 1-4 pairs; isolate the 1-4 pass
        from repro.md.nonbonded import nonbonded_14

        system = mini_assembly(seed=1)
        assert len(system.exclusions.pairs14) > 0
        opts = NonbondedOptions(cutoff=8.0)
        f_c = np.zeros((system.n_atoms, 3))
        f_r = np.zeros((system.n_atoms, 3))
        out_c = nonbonded_14(system, opts, f_c, backend=get_backend(backend))
        out_r = nonbonded_14(system, opts, f_r, backend=NUMPY)
        assert out_c[2] == out_r[2]
        assert _rel_close(out_c[0], out_r[0])
        assert _rel_close(out_c[1], out_r[1])
        assert _rel_close(f_c, f_r)


@pytest.mark.skipif(len(BACKENDS) < 2, reason="needs numba for cross-backend run")
class TestCompiledEngineParity:
    def test_sequential_engine_trajectory_close(self):
        from repro.md.engine import SequentialEngine
        from repro.md.integrator import VelocityVerlet

        reports = {}
        for name in BACKENDS:
            system = small_water_box(30, seed=4, relax=False)
            system.assign_velocities(300.0, seed=4)
            eng = SequentialEngine(
                system,
                NonbondedOptions(cutoff=6.0),
                VelocityVerlet(dt=1.0),
                backend=name,
            )
            reports[name] = [r.total for r in eng.run(5)]
        base = np.asarray(reports["numpy"])
        for name in BACKENDS[1:]:
            assert np.allclose(reports[name], base, rtol=1e-9, atol=1e-7)
