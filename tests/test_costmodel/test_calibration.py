"""Regression: the frozen DEFAULT_COST_MODEL matches calibration.

``DEFAULT_COST_MODEL`` in :mod:`repro.core.simulation` hardcodes the unit
costs obtained by calibrating against the ApoA-I system (seed 2000) and the
paper's Table 1 single-processor decomposition.  The builder is
deterministic, so the exact work counts below are stable; if either the
builder or the calibration math changes, this test flags the stale frozen
constants.

(The counts themselves are re-derived from the real 92,224-atom build in the
benchmark suite; see ``benchmarks/test_table2_apoa1_asci.py``'s single-
processor anchor.)
"""

import pytest

from repro.core.simulation import DEFAULT_COST_MODEL
from repro.costmodel.model import PAPER_APOA1_SECONDS, CostModel, WorkCounts

#: Work counts of apoa1_like(seed=2000) under the default decomposition,
#: measured once and fixed by determinism.
APOA1_COUNTS = WorkCounts(
    atoms=92_224,
    nonbonded_pairs=34_136_210,
    candidate_pairs=470_422_030,
    bonds=67_418,
    angles=42_243,
    dihedrals=11_272,
    impropers=880,
)


class TestFrozenConstants:
    def test_default_matches_fresh_calibration(self):
        fresh = CostModel.calibrated(APOA1_COUNTS)
        assert DEFAULT_COST_MODEL.t_pair == pytest.approx(fresh.t_pair, rel=1e-3)
        assert DEFAULT_COST_MODEL.t_candidate == pytest.approx(
            fresh.t_candidate, rel=1e-3
        )
        assert DEFAULT_COST_MODEL.t_bonded_unit == pytest.approx(
            fresh.t_bonded_unit, rel=1e-3
        )
        assert DEFAULT_COST_MODEL.t_atom_integration == pytest.approx(
            fresh.t_atom_integration, rel=1e-3
        )

    def test_default_reproduces_paper_single_processor_time(self):
        total = DEFAULT_COST_MODEL.sequential_step_cost(APOA1_COUNTS)
        assert total == pytest.approx(sum(PAPER_APOA1_SECONDS.values()), rel=2e-3)

    def test_component_breakdown_matches_table1_ideal(self):
        cm = DEFAULT_COST_MODEL
        nb = cm.nonbonded_cost(
            APOA1_COUNTS.nonbonded_pairs, APOA1_COUNTS.candidate_pairs
        )
        bd = cm.bonded_cost(
            APOA1_COUNTS.bonds,
            APOA1_COUNTS.angles,
            APOA1_COUNTS.dihedrals,
            APOA1_COUNTS.impropers,
        )
        integ = cm.integration_cost(APOA1_COUNTS.atoms)
        assert nb == pytest.approx(PAPER_APOA1_SECONDS["nonbonded"], rel=2e-3)
        assert bd == pytest.approx(PAPER_APOA1_SECONDS["bonded"], rel=2e-3)
        assert integ == pytest.approx(PAPER_APOA1_SECONDS["integration"], rel=2e-3)
