"""Cost model: calibration algebra and work counting."""

import numpy as np
import pytest

from repro.core.decomposition import SpatialDecomposition
from repro.costmodel.model import PAPER_APOA1_SECONDS, CostModel, WorkCounts, count_work


def make_counts(**overrides):
    base = dict(
        atoms=1000,
        nonbonded_pairs=100_000,
        candidate_pairs=1_000_000,
        bonds=800,
        angles=500,
        dihedrals=200,
        impropers=20,
    )
    base.update(overrides)
    return WorkCounts(**base)


class TestCalibration:
    def test_calibrated_reproduces_target_times(self):
        counts = make_counts()
        cm = CostModel.calibrated(counts, nonbonded_s=10.0, bonded_s=2.0,
                                  integration_s=1.0)
        nb = cm.nonbonded_cost(counts.nonbonded_pairs, counts.candidate_pairs)
        bd = cm.bonded_cost(counts.bonds, counts.angles, counts.dihedrals,
                            counts.impropers)
        integ = cm.integration_cost(counts.atoms)
        assert nb == pytest.approx(10.0)
        assert bd == pytest.approx(2.0)
        assert integ == pytest.approx(1.0)
        assert cm.sequential_step_cost(counts) == pytest.approx(13.0)

    def test_calibration_defaults_are_paper_numbers(self):
        counts = make_counts()
        cm = CostModel.calibrated(counts)
        assert cm.sequential_step_cost(counts) == pytest.approx(
            sum(PAPER_APOA1_SECONDS.values())
        )

    def test_rejects_zero_pairs(self):
        with pytest.raises(ValueError):
            CostModel.calibrated(make_counts(nonbonded_pairs=0))

    def test_costs_scale_linearly(self):
        cm = CostModel.calibrated(make_counts())
        assert cm.nonbonded_cost(200, 0) == pytest.approx(2 * cm.nonbonded_cost(100, 0))
        assert cm.integration_cost(50) == pytest.approx(50 * cm.t_atom_integration)

    def test_weighted_bonded(self):
        c = make_counts(bonds=10, angles=10, dihedrals=10, impropers=10)
        assert c.weighted_bonded == pytest.approx(10 * (1 + 2 + 4 + 3.5))


class TestCountWork:
    def test_counts_on_assembly(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        w = count_work(assembly, d)
        assert w.atoms == assembly.n_atoms
        assert w.bonds == assembly.topology.n_bonds
        assert w.nonbonded_pairs > 0
        assert w.candidate_pairs >= w.nonbonded_pairs

    def test_counts_match_brute_force(self, water64):
        from repro.md.nonbonded import count_interacting_pairs

        d = SpatialDecomposition(water64, cutoff=6.0, dims=(2, 2, 2))
        w = count_work(water64, d)
        # brute force over the whole system
        brute = count_interacting_pairs(water64.positions, None, water64.box, 6.0)
        assert w.nonbonded_pairs == brute

    def test_grid_count_identical_to_blocked_reference(self, assembly, water64):
        """The grid-based count_work must reproduce the former per-block
        implementation exactly (same WorkCounts, field for field)."""
        from repro.costmodel.model import _count_work_blocked

        for system, cutoff, dims in (
            (assembly, 12.0, None),
            (water64, 6.0, (2, 2, 2)),
        ):
            d = (
                SpatialDecomposition(system, cutoff=cutoff)
                if dims is None
                else SpatialDecomposition(system, cutoff=cutoff, dims=dims)
            )
            assert count_work(system, d) == _count_work_blocked(system, d)

    def test_block_pair_counts_matches_direct_counting(self, water64):
        """The shared helper must equal a direct count_interacting_pairs
        call for both self and cross blocks, candidates included."""
        from repro.costmodel.model import block_pair_counts
        from repro.md.nonbonded import count_interacting_pairs

        pos, box = water64.positions, water64.box
        rng = np.random.default_rng(0)
        a = rng.choice(water64.n_atoms, size=40, replace=False)
        b = np.setdiff1d(np.arange(water64.n_atoms), a)[:50]

        n_pairs, n_cand = block_pair_counts(pos, box, 6.0, a)
        assert n_cand == len(a) * (len(a) - 1) // 2
        assert n_pairs == count_interacting_pairs(pos[a], None, box, 6.0)

        n_pairs, n_cand = block_pair_counts(pos, box, 6.0, a, b)
        assert n_cand == len(a) * len(b)
        assert n_pairs == count_interacting_pairs(pos[a], pos[b], box, 6.0)

    def test_estimate_block_costs_routes_through_shared_helper(self, water64):
        """estimate_block_costs (WorkDB priors) and the blocked work count
        (audit reference) must agree on every block's pair count: summed over
        the half-shell task list they reproduce the global count."""
        from repro.core.decomposition import bin_atoms
        from repro.costmodel.model import block_pair_counts, estimate_block_costs
        from repro.md.cells import CellGrid
        from repro.md.nonbonded import count_interacting_pairs

        pos, box = water64.positions, water64.box
        cutoff = 6.0
        grid = CellGrid.build(pos, box, cutoff)
        _, _, buckets = bin_atoms(pos, box, grid.dims)
        a_arr, b_arr = grid.neighbor_cell_pair_arrays()
        tasks = list(zip(a_arr.tolist(), b_arr.tolist()))

        per_block = [
            block_pair_counts(
                pos, box, cutoff, buckets[a], None if a == b else buckets[b]
            )
            for a, b in tasks
        ]
        total_pairs = sum(p for p, _ in per_block)
        assert total_pairs == count_interacting_pairs(pos, None, box, cutoff)

        # unit cost model: cost == n_pairs + n_cand, block for block
        costs = estimate_block_costs(
            pos, box, cutoff, buckets, tasks, model=CostModel(
                t_pair=1.0, t_candidate=1.0, t_bonded_unit=0.0,
                t_atom_integration=0.0,
            )
        )
        np.testing.assert_allclose(
            costs, [p + c for p, c in per_block], rtol=0, atol=0
        )

    def test_counts_agree_with_descriptor_sums(self, assembly):
        from repro.core.computes import GrainsizeConfig, build_nonbonded_computes
        from repro.core.simulation import DEFAULT_COST_MODEL

        d = SpatialDecomposition(assembly, cutoff=12.0)
        w = count_work(assembly, d)
        descs = build_nonbonded_computes(
            d, DEFAULT_COST_MODEL, GrainsizeConfig(split_self=False, split_pairs=False)
        )
        assert sum(x.n_pairs for x in descs) == w.nonbonded_pairs
        assert sum(x.n_candidates for x in descs) == w.candidate_pairs
