"""Cost model: calibration algebra and work counting."""

import numpy as np
import pytest

from repro.core.decomposition import SpatialDecomposition
from repro.costmodel.model import PAPER_APOA1_SECONDS, CostModel, WorkCounts, count_work


def make_counts(**overrides):
    base = dict(
        atoms=1000,
        nonbonded_pairs=100_000,
        candidate_pairs=1_000_000,
        bonds=800,
        angles=500,
        dihedrals=200,
        impropers=20,
    )
    base.update(overrides)
    return WorkCounts(**base)


class TestCalibration:
    def test_calibrated_reproduces_target_times(self):
        counts = make_counts()
        cm = CostModel.calibrated(counts, nonbonded_s=10.0, bonded_s=2.0,
                                  integration_s=1.0)
        nb = cm.nonbonded_cost(counts.nonbonded_pairs, counts.candidate_pairs)
        bd = cm.bonded_cost(counts.bonds, counts.angles, counts.dihedrals,
                            counts.impropers)
        integ = cm.integration_cost(counts.atoms)
        assert nb == pytest.approx(10.0)
        assert bd == pytest.approx(2.0)
        assert integ == pytest.approx(1.0)
        assert cm.sequential_step_cost(counts) == pytest.approx(13.0)

    def test_calibration_defaults_are_paper_numbers(self):
        counts = make_counts()
        cm = CostModel.calibrated(counts)
        assert cm.sequential_step_cost(counts) == pytest.approx(
            sum(PAPER_APOA1_SECONDS.values())
        )

    def test_rejects_zero_pairs(self):
        with pytest.raises(ValueError):
            CostModel.calibrated(make_counts(nonbonded_pairs=0))

    def test_costs_scale_linearly(self):
        cm = CostModel.calibrated(make_counts())
        assert cm.nonbonded_cost(200, 0) == pytest.approx(2 * cm.nonbonded_cost(100, 0))
        assert cm.integration_cost(50) == pytest.approx(50 * cm.t_atom_integration)

    def test_weighted_bonded(self):
        c = make_counts(bonds=10, angles=10, dihedrals=10, impropers=10)
        assert c.weighted_bonded == pytest.approx(10 * (1 + 2 + 4 + 3.5))


class TestCountWork:
    def test_counts_on_assembly(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        w = count_work(assembly, d)
        assert w.atoms == assembly.n_atoms
        assert w.bonds == assembly.topology.n_bonds
        assert w.nonbonded_pairs > 0
        assert w.candidate_pairs >= w.nonbonded_pairs

    def test_counts_match_brute_force(self, water64):
        from repro.md.nonbonded import count_interacting_pairs

        d = SpatialDecomposition(water64, cutoff=6.0, dims=(2, 2, 2))
        w = count_work(water64, d)
        # brute force over the whole system
        brute = count_interacting_pairs(water64.positions, None, water64.box, 6.0)
        assert w.nonbonded_pairs == brute

    def test_grid_count_identical_to_blocked_reference(self, assembly, water64):
        """The grid-based count_work must reproduce the former per-block
        implementation exactly (same WorkCounts, field for field)."""
        from repro.costmodel.model import _count_work_blocked

        for system, cutoff, dims in (
            (assembly, 12.0, None),
            (water64, 6.0, (2, 2, 2)),
        ):
            d = (
                SpatialDecomposition(system, cutoff=cutoff)
                if dims is None
                else SpatialDecomposition(system, cutoff=cutoff, dims=dims)
            )
            assert count_work(system, d) == _count_work_blocked(system, d)

    def test_counts_agree_with_descriptor_sums(self, assembly):
        from repro.core.computes import GrainsizeConfig, build_nonbonded_computes
        from repro.core.simulation import DEFAULT_COST_MODEL

        d = SpatialDecomposition(assembly, cutoff=12.0)
        w = count_work(assembly, d)
        descs = build_nonbonded_computes(
            d, DEFAULT_COST_MODEL, GrainsizeConfig(split_self=False, split_pairs=False)
        )
        assert sum(x.n_pairs for x in descs) == w.nonbonded_pairs
        assert sum(x.n_candidates for x in descs) == w.candidate_pairs
