"""Flop model used for the GFLOPS columns."""

import pytest

from repro.costmodel.flops import DEFAULT_FLOPS, FlopModel
from repro.costmodel.model import WorkCounts


def counts(**kw):
    base = dict(atoms=100, nonbonded_pairs=1000, candidate_pairs=5000,
                bonds=50, angles=30, dihedrals=20, impropers=5)
    base.update(kw)
    return WorkCounts(**base)


class TestFlopModel:
    def test_step_flops_positive(self):
        assert DEFAULT_FLOPS.step_flops(counts()) > 0

    def test_linear_in_pairs(self):
        f1 = DEFAULT_FLOPS.step_flops(counts(nonbonded_pairs=1000))
        f2 = DEFAULT_FLOPS.step_flops(counts(nonbonded_pairs=2000))
        assert f2 - f1 == pytest.approx(1000 * DEFAULT_FLOPS.per_pair)

    def test_component_accounting(self):
        fm = FlopModel(per_pair=10, per_candidate=1, per_bond=2, per_angle=3,
                       per_dihedral=4, per_improper=5, per_atom_integration=6)
        c = counts()
        expected = (10 * 1000 + 1 * 5000 + 2 * 50 + 3 * 30 + 4 * 20 + 5 * 5
                    + 6 * 100)
        assert fm.step_flops(c) == expected

    def test_apoa1_scale_sanity(self):
        """The paper's 1-processor ApoA-I run: ~0.048 GFLOPS at 57 s/step,
        i.e. ~2.7 Gflop per step at ~34M pairs."""
        c = counts(
            atoms=92_224,
            nonbonded_pairs=34_136_210,
            candidate_pairs=470_422_030,
            bonds=67_418,
            angles=42_243,
            dihedrals=11_272,
            impropers=880,
        )
        gflops_at_paper_time = DEFAULT_FLOPS.step_flops(c) / 57.04 / 1e9
        assert gflops_at_paper_time == pytest.approx(0.048, rel=0.2)
