"""CLI smoke tests (direct invocation, captured stdout)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        for cmd in ("info", "md", "scaling", "audit", "grainsize"):
            args = build_parser().parse_args([cmd])
            assert args.command == cmd


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "92224" in out.replace(",", "")
        assert "ASCI-Red" in out

    def test_md(self, capsys):
        assert main(["md", "--waters", "27", "--steps", "3", "--cutoff", "5"]) == 0
        out = capsys.readouterr().out
        assert "kinetic" in out
        # header + 3 steps + pairlist summary
        assert len(out.strip().splitlines()) == 5
        assert "pairlist:" in out

    def test_md_pairlist_disabled(self, capsys):
        assert main(
            ["md", "--waters", "27", "--steps", "3", "--cutoff", "5",
             "--pairlist-skin", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "pairlist:" not in out
        assert len(out.strip().splitlines()) == 4

    def test_md_rejects_negative_skin(self):
        with pytest.raises(SystemExit):
            main(["md", "--waters", "27", "--steps", "1", "--pairlist-skin", "-1"])

    def test_scaling_mini(self, capsys):
        assert main(["scaling", "--system", "mini", "--procs", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "Speedup" in out

    def test_audit_mini(self, capsys):
        assert main(["audit", "--system", "mini", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "Ideal" in out and "Actual" in out

    def test_grainsize_mini(self, capsys):
        assert main(["grainsize", "--system", "mini"]) == 0
        out = capsys.readouterr().out
        assert "before pair splitting" in out

    def test_unknown_machine_exits(self):
        with pytest.raises(SystemExit):
            main(["scaling", "--system", "mini", "--machine", "Cray-XMP"])

    def test_report_empty_dir_errors(self, tmp_path, capsys):
        assert main(["report", "--results-dir", str(tmp_path)]) == 1

    def test_report_prints_artifacts(self, tmp_path, capsys):
        (tmp_path / "table9.txt").write_text("hello table")
        assert main(["report", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "table9" in out and "hello table" in out


class TestResilienceFlags:
    """--fault-plan / --checkpoint-every / --checkpoint-path / --resume."""

    MD27 = ["md", "--waters", "27", "--steps", "3", "--cutoff", "5"]

    def test_fault_plan_needs_parallel_workers(self):
        with pytest.raises(SystemExit, match="workers"):
            main(self.MD27 + ["--fault-plan", "kill=0@1"])

    def test_fault_plan_rejects_garbage(self):
        with pytest.raises(SystemExit, match="fault-plan"):
            main(self.MD27 + ["--workers", "2", "--fault-plan", "bogus"])

    def test_checkpoint_every_needs_path(self):
        with pytest.raises(SystemExit, match="checkpoint-path"):
            main(self.MD27 + ["--checkpoint-every", "2"])

    def test_checkpoint_every_rejects_negative(self):
        with pytest.raises(SystemExit, match="checkpoint-every"):
            main(self.MD27 + ["--checkpoint-every", "-1"])

    def test_resume_needs_path(self):
        with pytest.raises(SystemExit, match="checkpoint-path"):
            main(self.MD27 + ["--resume"])

    def test_resume_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no checkpoint"):
            main(
                self.MD27
                + ["--resume", "--checkpoint-path", str(tmp_path / "nope.npz")]
            )

    def test_checkpoint_write_then_resume(self, tmp_path, capsys):
        path = str(tmp_path / "run.npz")
        assert main(
            self.MD27 + ["--checkpoint-every", "2", "--checkpoint-path", path]
        ) == 0
        out = capsys.readouterr().out
        assert "checkpoints: 1 written" in out
        assert main(
            self.MD27 + ["--resume", "--checkpoint-path", path]
        ) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint at step 2" in out

    def test_resume_corrupt_file_errors(self, tmp_path):
        path = tmp_path / "run.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(SystemExit, match="resume"):
            main(self.MD27 + ["--resume", "--checkpoint-path", str(path)])
