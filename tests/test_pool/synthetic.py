"""A minimal synthetic TaskProvider for exercising the pool runtime alone.

Task ``t`` computes ``data[t] * scale`` (``scale`` arrives as the step
payload) and writes it into its one scratch row — enough to verify the
dispatch/collect protocol, the shared-memory plumbing, per-task stats,
and that recovery reproduces the exact same numbers.  No MD imports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class SyntheticEvaluator:
    def __init__(self, n_tasks: int, worker_id: int, views: dict) -> None:
        self.n_tasks = int(n_tasks)
        self.worker_id = int(worker_id)
        self.data = views["data"]
        self.scale = 1.0
        self.rebuilds = 0

    def begin_step(self, payload) -> None:
        self.scale = float(payload)

    def rebuild(self, my_tasks):
        self.rebuilds += 1
        return np.arange(self.n_tasks + 1, dtype=np.int64)

    def eval_task(self, t: int, block: np.ndarray):
        val = float(self.data[t]) * self.scale
        block[...] = val
        return (val, 2.0 * val, 1.0)

    def end_step(self, out_row: np.ndarray) -> None:
        out_row[0] = float(self.rebuilds)

    def close(self) -> None:
        self.data = None


@dataclass
class SyntheticProvider:
    n: int

    @property
    def n_tasks(self) -> int:
        return self.n

    def scratch_shape(self):
        return (self.n, 3)

    def segments(self):
        return {"data": ((self.n,), "float64")}

    def make_evaluator(self, worker_id, n_workers, views):
        return SyntheticEvaluator(self.n, worker_id, views)


class SleepyEvaluator(SyntheticEvaluator):
    """Each task takes ~20 ms — wide enough to land mid-step faults."""

    def eval_task(self, t, block):
        import time

        time.sleep(0.02)
        return super().eval_task(t, block)


@dataclass
class SleepyProvider(SyntheticProvider):
    def make_evaluator(self, worker_id, n_workers, views):
        return SleepyEvaluator(self.n, worker_id, views)


class ErroringEvaluator(SyntheticEvaluator):
    """Raises deterministically on one task — every incarnation re-raises."""

    def eval_task(self, t, block):
        if t == 0:
            raise RuntimeError("synthetic task failure")
        return super().eval_task(t, block)


@dataclass
class ErroringProvider(SyntheticProvider):
    def make_evaluator(self, worker_id, n_workers, views):
        return ErroringEvaluator(self.n, worker_id, views)


class FlappingEvaluator(SyntheticEvaluator):
    """Hangs forever on task 0 — *every* incarnation hangs again.

    The canonical flapping worker: hang → respawn → hang.  Each respawn
    looks like progress to the supervisor, so without a total recovery
    budget the ladder re-arms a fresh timeout per rung.
    """

    def eval_task(self, t, block):
        if t == 0:
            import time

            while True:
                time.sleep(0.05)
        return super().eval_task(t, block)


@dataclass
class FlappingProvider(SyntheticProvider):
    def make_evaluator(self, worker_id, n_workers, views):
        return FlappingEvaluator(self.n, worker_id, views)
