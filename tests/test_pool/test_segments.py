"""Shared-memory segment registry: collision-free names, clean unlink."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pool import HAS_SHARED_MEMORY, SegmentRegistry, attach_segment

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="platform lacks multiprocessing.shared_memory"
)


def test_names_unique_across_registries():
    regs = [SegmentRegistry() for _ in range(4)]
    try:
        for reg in regs:
            reg.create("data", 64)
        names = {reg.name("data") for reg in regs}
        assert len(names) == len(regs)
        prefixes = {reg.prefix for reg in regs}
        assert len(prefixes) == len(regs)
    finally:
        for reg in regs:
            reg.unlink_all()


def test_attach_sees_driver_writes():
    reg = SegmentRegistry()
    try:
        reg.create("data", 8 * 8)
        view = np.ndarray((8,), dtype=np.float64, buffer=reg.get("data").buf)
        view[...] = np.arange(8)
        seg = attach_segment(reg.name("data"))
        try:
            remote = np.ndarray((8,), dtype=np.float64, buffer=seg.buf)
            np.testing.assert_array_equal(remote, np.arange(8))
        finally:
            del remote
            seg.close()
    finally:
        del view
        reg.unlink_all()


def test_unlink_all_releases_segments():
    # the leak check: after unlink_all the names must be gone from the OS
    reg = SegmentRegistry()
    reg.create("a", 64)
    reg.create("b", 64)
    names = list(reg.names().values())
    reg.unlink_all()
    for name in names:
        with pytest.raises(FileNotFoundError):
            attach_segment(name)


def test_unlink_all_idempotent():
    reg = SegmentRegistry()
    reg.create("a", 64)
    reg.unlink_all()
    reg.unlink_all()  # second call must not raise
