"""The supervised pool runtime, exercised without any MD machinery.

Covers the generic dispatch/collect protocol, the recovery ladder
(respawn, reassign, degrade), lifecycle edges (atexit deregistration,
close racing an in-flight recovery respawn), and determinism of the
task-ordered results under recovery.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.pool import (
    HAS_SHARED_MEMORY,
    RecoveryPolicy,
    SupervisedPool,
)
from repro.pool import runtime as pool_runtime
from repro.pool.protocol import STAT_TIME_NS, STAT_V0, STAT_V1, STAT_V2

from tests.test_pool.synthetic import (
    ErroringProvider,
    FlappingProvider,
    SleepyProvider,
    SyntheticProvider,
)

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="platform lacks multiprocessing.shared_memory"
)

N_TASKS = 12


def make_pool(n_workers=2, provider=None, **kw):
    provider = provider or SyntheticProvider(N_TASKS)
    assignment = np.arange(provider.n_tasks, dtype=np.int64) % n_workers
    kw.setdefault("timeout", 60.0)
    return SupervisedPool(provider, n_workers, assignment, **kw)


def run_step(pool, scale, rebuild=False):
    assert pool.begin_step()
    pool.dispatch(rebuild, scale)
    assert pool.collect()
    pool.finish_step()


class TestProtocol:
    def test_dispatch_collect_reduction(self):
        with make_pool() as pool:
            data = np.arange(N_TASKS, dtype=np.float64) + 1.0
            pool.view("data")[...] = data
            run_step(pool, 3.0, rebuild=True)
            np.testing.assert_array_equal(pool.scratch[:, 0], data * 3.0)
            stats = pool.stats[:N_TASKS]
            np.testing.assert_array_equal(stats[:, STAT_V0], data * 3.0)
            np.testing.assert_array_equal(stats[:, STAT_V1], data * 6.0)
            np.testing.assert_array_equal(stats[:, STAT_V2], 1.0)
            assert (stats[:, STAT_TIME_NS] > 0).all()

    def test_payload_reaches_every_step(self):
        with make_pool() as pool:
            pool.view("data")[...] = 1.0
            for scale in (1.0, 2.0, 5.0):
                run_step(pool, scale, rebuild=(scale == 1.0))
                np.testing.assert_array_equal(pool.scratch[:, 0], scale)

    def test_worker_rows_after_tasks(self):
        # end_step publishes into stats[n_tasks + worker_id]
        with make_pool() as pool:
            pool.view("data")[...] = 1.0
            run_step(pool, 1.0, rebuild=True)
            worker_rows = pool.stats[N_TASKS : N_TASKS + pool.n_workers]
            assert (worker_rows[:, 0] >= 1.0).all()

    def test_double_dispatch_raises(self):
        with make_pool() as pool:
            pool.begin_step()
            pool.dispatch(True, 1.0)
            with pytest.raises(RuntimeError, match="outstanding"):
                pool.dispatch(True, 1.0)
            assert pool.collect()
            pool.finish_step()

    def test_seq_is_settable(self):
        # clients realign the counter on checkpoint restore
        with make_pool() as pool:
            run_step(pool, 1.0, rebuild=True)
            assert pool.seq == 1
            pool.seq = 41
            run_step(pool, 1.0)
            assert pool.seq == 42

    def test_needs_two_workers(self):
        with pytest.raises(ValueError, match="at least 2"):
            make_pool(n_workers=1)

    def test_reserved_segment_label(self):
        class BadProvider(SyntheticProvider):
            def segments(self):
                return {"scratch": ((4,), "float64")}

        with pytest.raises(ValueError, match="reserved"):
            make_pool(provider=BadProvider(N_TASKS))


def kill_worker(pool, w):
    proc = pool.procs[w]
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=10.0)
    assert not proc.is_alive()


class TestRecovery:
    def test_midstep_kill_respawned_same_result(self):
        # ~20 ms/task leaves a wide window to land the kill in flight
        with make_pool(provider=SleepyProvider(N_TASKS)) as pool:
            data = np.linspace(0.5, 6.0, N_TASKS)
            pool.view("data")[...] = data
            run_step(pool, 1.0, rebuild=True)
            expect = pool.scratch[:, 0].copy()
            pool.begin_step()
            pool.dispatch(False, 1.0)
            os.kill(pool.procs[0].pid, signal.SIGKILL)
            assert pool.collect()
            pool.finish_step()
            np.testing.assert_array_equal(pool.scratch[:, 0], expect)
            assert pool.resilience.respawns >= 1
            assert pool.n_live == pool.n_workers

    def test_idle_death_respawned_at_begin_step(self):
        with make_pool() as pool:
            data = np.linspace(0.5, 6.0, N_TASKS)
            pool.view("data")[...] = data
            run_step(pool, 1.0, rebuild=True)
            expect = pool.scratch[:, 0].copy()
            kill_worker(pool, 0)
            run_step(pool, 1.0)  # begin_step heals before dispatching
            np.testing.assert_array_equal(pool.scratch[:, 0], expect)
            assert pool.resilience.respawns == 1
            assert pool.n_live == pool.n_workers

    def test_respawn_budget_exhausted_reassigns(self):
        policy = RecoveryPolicy(max_respawns=0)
        with make_pool(n_workers=3, policy=policy) as pool:
            pool.view("data")[...] = 1.0
            run_step(pool, 2.0, rebuild=True)
            kill_worker(pool, 1)
            assert pool.begin_step()
            assert pool.n_live == 2
            assert 1 not in set(pool.assignment.tolist())
            assert pool.resilience.respawns == 0
            assert pool.resilience.tasks_reassigned > 0
            assert pool.resilience.mode == "degraded"
            # the new map must reach the survivors with the next rebuild
            pool.dispatch(True, 3.0, pool.assignment)
            assert pool.collect()
            pool.finish_step()
            np.testing.assert_array_equal(pool.scratch[:, 0], 3.0)

    def test_reassign_callback_controls_placement(self):
        seen = {}

        def reassign(dead, assignment, survivors):
            seen["args"] = (dead, sorted(survivors))
            new = assignment.copy()
            new[assignment == dead] = survivors[0]
            return new

        policy = RecoveryPolicy(max_respawns=0)
        with make_pool(n_workers=3, policy=policy, reassign=reassign) as pool:
            pool.view("data")[...] = 1.0
            run_step(pool, 1.0, rebuild=True)
            kill_worker(pool, 2)
            assert pool.begin_step()
            dead, survivors = seen["args"]
            assert dead == 2 and survivors == [0, 1]
            orphan_owners = {
                int(pool.assignment[t]) for t in range(N_TASKS) if t % 3 == 2
            }
            assert orphan_owners == {0}
            pool.dispatch(True, 4.0, pool.assignment)
            assert pool.collect()
            pool.finish_step()
            np.testing.assert_array_equal(pool.scratch[:, 0], 4.0)

    def test_erroring_task_degrades_and_reports(self):
        policy = RecoveryPolicy(max_respawns=1, max_recovery_rounds=2)
        pool = make_pool(provider=ErroringProvider(N_TASKS), policy=policy)
        try:
            pool.view("data")[...] = 1.0
            pool.begin_step()
            pool.dispatch(True, 1.0)
            with pytest.warns(RuntimeWarning, match="degraded"):
                assert not pool.collect()
            assert not pool.active
            assert pool.degraded_reason is not None
            assert pool.resilience.mode == "sequential"
        finally:
            pool.close()

    def test_flapping_worker_bounded_by_recovery_budget(self):
        # hang -> respawn -> hang: every incarnation hangs again on task 0.
        # Each recovery rung re-arms a fresh per-attempt deadline, so
        # without the total budget this ladder would churn through
        # ~max_respawns rungs per worker slot (minutes of wall clock)
        # before the rounds limit bites.  The budget must force the
        # degrade rung within a couple of seconds instead.
        policy = RecoveryPolicy(
            max_respawns=50,
            respawn_backoff_s=0.01,
            max_recovery_rounds=200,
            hang_timeout_s=0.25,
            recovery_budget_s=1.5,
        )
        pool = make_pool(provider=FlappingProvider(N_TASKS), policy=policy)
        try:
            pool.view("data")[...] = 1.0
            pool.begin_step()
            pool.dispatch(True, 1.0)
            t0 = time.monotonic()
            with pytest.warns(RuntimeWarning, match="recovery budget exhausted"):
                assert not pool.collect()
            elapsed = time.monotonic() - t0
            # generous for slow CI, but far below the pre-fix ladder's
            # ~100 rungs x (detection + respawn) wall time
            assert elapsed < 15.0
            assert pool.resilience.mode == "sequential"
            assert "budget" in (pool.degraded_reason or "")
        finally:
            pool.close()

    def test_recovery_budget_spares_healthy_recoveries(self):
        # a single clean kill + respawn must stay well inside the default
        # budget (recovery_budget_factor x timeout) and finish the step
        with make_pool(provider=SleepyProvider(N_TASKS)) as pool:
            data = np.linspace(0.5, 6.0, N_TASKS)
            pool.view("data")[...] = data
            run_step(pool, 1.0, rebuild=True)
            expect = pool.scratch[:, 0].copy()
            pool.begin_step()
            pool.dispatch(False, 1.0)
            os.kill(pool.procs[0].pid, signal.SIGKILL)
            assert pool.collect()
            pool.finish_step()
            np.testing.assert_array_equal(pool.scratch[:, 0], expect)
            assert pool.resilience.mode == "full"

    def test_recovery_budget_policy_validation(self):
        assert RecoveryPolicy(recovery_budget_s=2.0).recovery_budget(60.0) == 2.0
        assert RecoveryPolicy().recovery_budget(10.0) == 30.0
        with pytest.raises(ValueError, match="recovery_budget_s"):
            RecoveryPolicy(recovery_budget_s=0.0)
        with pytest.raises(ValueError, match="recovery_budget_factor"):
            RecoveryPolicy(recovery_budget_factor=0.5)

    def test_recovery_notes_forwarded(self):
        notes = []
        with make_pool(on_recovery_note=lambda label, n=1: notes.append(label)) as pool:
            pool.view("data")[...] = 1.0
            run_step(pool, 1.0, rebuild=True)
            kill_worker(pool, 0)
            run_step(pool, 1.0)
        assert "kills" in notes and "respawns" in notes


class TestLifecycle:
    def test_close_idempotent_and_releases_processes(self):
        pool = make_pool()
        procs = [p for p in pool.procs]
        pool.close()
        pool.close()
        assert not pool.active
        assert all(not p.is_alive() for p in procs)

    def test_atexit_registry_deregisters_on_close(self):
        # explicit close() must leave no dead-object callback behind: the
        # pool leaves the live registry the moment it closes
        pool = make_pool()
        assert pool in pool_runtime._LIVE_POOLS
        pool.close()
        assert pool not in pool_runtime._LIVE_POOLS

    def test_atexit_sweep_closes_stragglers(self):
        pool = make_pool()
        try:
            pool_runtime._close_live_pools()
            assert not pool.active
            assert pool not in pool_runtime._LIVE_POOLS
        finally:
            pool.close()

    def test_close_during_recovery_backoff_spawns_nothing(self):
        # close() landing inside the recovery ladder's backoff sleep must
        # not orphan a half-spawned replacement worker
        class ClosingPolicy(RecoveryPolicy):
            def backoff(self, attempt):
                pool_box["pool"].close()
                return 0.0

        pool_box = {}
        pool = make_pool(policy=ClosingPolicy())
        pool_box["pool"] = pool
        try:
            pool.view("data")[...] = 1.0
            run_step(pool, 1.0, rebuild=True)
            kill_worker(pool, 0)
            assert not pool.begin_step()  # close won the race: no heal
            assert not pool.active
            # nothing respawned into the torn-down pool
            assert pool.resilience.respawns == 0
            assert pool.procs == []
        finally:
            pool.close()

    def test_spawn_refused_on_closed_pool(self):
        pool = make_pool()
        pool.close()
        assert pool._spawn_worker(0) is False

    def test_close_between_spawn_start_and_return_reaps_worker(self):
        # the second guard: close() arriving after Process.start() but
        # before _spawn_worker returns must reap the half-spawned worker
        pool = make_pool()

        class RacingCtx:
            def __init__(self, ctx):
                self._ctx = ctx

            def Pipe(self, duplex=False):
                return self._ctx.Pipe(duplex=duplex)

            def Process(self, **kw):
                proc = self._ctx.Process(**kw)
                orig_start = proc.start

                def start():
                    orig_start()
                    pool._closed = True  # the racing close() lands here

                proc.start = start
                return proc

        try:
            pool._reap_worker(0)
            pool._ctx = RacingCtx(pool._ctx)
            assert pool._spawn_worker(0) is False
            assert pool._procs[0] is None
            assert pool._cmd_conns[0] is None
        finally:
            pool._closed = False  # the simulated close never tore down
            pool.close()
