"""Worker-budget leasing: the service's admission-control primitive."""

import pytest

from repro.pool import WorkerBudget, WorkerLease


class TestWorkerBudget:
    def test_acquire_and_release_roundtrip(self):
        budget = WorkerBudget(4)
        lease = budget.try_acquire(3, label="job-a")
        assert isinstance(lease, WorkerLease)
        assert lease.active and lease.slots == 3
        assert budget.leased == 3 and budget.available == 1
        lease.release()
        assert not lease.active
        assert budget.leased == 0 and budget.available == 4

    def test_acquire_fails_without_capacity(self):
        budget = WorkerBudget(4)
        first = budget.try_acquire(3)
        assert first is not None
        assert budget.try_acquire(2) is None  # only 1 slot left
        assert budget.leased == 3  # failed acquire leaks nothing
        # a smaller request still fits around the big lease: packing
        small = budget.try_acquire(1)
        assert small is not None
        assert budget.available == 0

    def test_release_is_idempotent(self):
        budget = WorkerBudget(2)
        lease = budget.try_acquire(2)
        lease.release()
        lease.release()
        assert budget.leased == 0

    def test_context_manager_releases(self):
        budget = WorkerBudget(2)
        with budget.try_acquire(2) as lease:
            assert lease.active
            assert budget.available == 0
        assert budget.available == 2

    def test_zero_slot_lease_always_succeeds(self):
        # sequential jobs lease 0 worker processes
        budget = WorkerBudget(1)
        big = budget.try_acquire(1)
        assert big is not None
        zero = budget.try_acquire(0)
        assert zero is not None and zero.slots == 0
        assert budget.leased == 1

    def test_invalid_requests(self):
        budget = WorkerBudget(2)
        with pytest.raises(ValueError, match="slots must be >= 0"):
            budget.try_acquire(-1)
        with pytest.raises(ValueError, match="never fit"):
            budget.try_acquire(3)
        with pytest.raises(ValueError, match="total_slots"):
            WorkerBudget(-1)

    def test_release_all_sweeps_leaks(self):
        budget = WorkerBudget(4)
        a = budget.try_acquire(2)
        b = budget.try_acquire(1)
        budget.release_all()
        assert budget.leased == 0 and budget.n_leases == 0
        assert not a.active and not b.active
