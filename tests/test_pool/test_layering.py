"""The import contract: ``repro.pool`` is a cycle-free, MD-free layer."""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_pool_package_imports_no_domain_layer():
    # static AST sweep over every repro.pool module (catches lazy imports)
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_layering", REPO / "tools" / "check_layering.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert mod.check() == []


def test_pool_package_imports_standalone():
    # dynamic confirmation: importing the package must not pull repro.md
    # (or the balancer/instrument layers) into sys.modules
    code = (
        "import sys, repro.pool; "
        "bad = [m for m in sys.modules if m.startswith("
        "('repro.md', 'repro.balancer', 'repro.instrument'))]; "
        "assert not bad, bad"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr


def test_checker_script_runs_clean():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_layering.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
