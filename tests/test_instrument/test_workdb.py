"""WorkDB: EWMA convergence, prior handoff, serialization, adapter."""

import json

import numpy as np
import pytest

from repro.balancer.problem import LBProblem
from repro.instrument import WorkDB, build_lb_problem, derive_proxies


class TestRecording:
    def test_first_sample_sets_ewma_exactly(self):
        db = WorkDB()
        db.record(0, 2.5)
        assert db.tasks[0].ewma == 2.5
        assert db.tasks[0].last == 2.5
        assert db.tasks[0].n_samples == 1

    def test_ewma_converges_on_noisy_samples(self):
        """With stationary noisy samples the EWMA settles near the true mean,
        far closer than single samples scatter."""
        rng = np.random.default_rng(42)
        true_mean, noise = 2.0e-3, 0.5e-3
        db = WorkDB(ewma_alpha=0.3)
        samples = rng.normal(true_mean, noise, size=400)
        for s in samples:
            db.record(7, float(s))
        # steady-state EWMA std is noise * sqrt(a / (2 - a)) ~= 0.42 * noise;
        # 3 sigma of that is well inside 40% of the mean
        assert db.tasks[7].ewma == pytest.approx(true_mean, rel=0.4)
        assert db.tasks[7].window_mean() == pytest.approx(
            np.mean(samples[-8:]), rel=1e-12
        )
        assert db.tasks[7].total == pytest.approx(samples.sum())

    def test_ewma_tracks_a_load_shift(self):
        db = WorkDB(ewma_alpha=0.3)
        for _ in range(20):
            db.record(0, 1.0)
        for _ in range(20):
            db.record(0, 3.0)
        # (1 - 0.3)^20 of the old level is ~0.08%: the shift has been absorbed
        assert db.tasks[0].ewma == pytest.approx(3.0, rel=1e-2)

    def test_window_keeps_last_k_only(self):
        db = WorkDB(window=4)
        for s in range(10):
            db.record(0, float(s))
        assert list(db.tasks[0].window) == [6.0, 7.0, 8.0, 9.0]

    def test_record_many_with_owners(self):
        db = WorkDB()
        db.record_many([0, 1, 2], [0.1, 0.2, 0.3], owners=[1, 1, 0])
        assert db.tasks[0].owner == 1
        assert db.tasks[2].owner == 0
        loads = db.owner_loads(2)
        assert loads[0] == pytest.approx(0.3)
        assert loads[1] == pytest.approx(0.1 + 0.2)

    def test_background_ewma_and_totals(self):
        db = WorkDB(ewma_alpha=0.5)
        db.record_background(1, 2.0)
        db.record_background(1, 4.0)
        assert db.background_array(2)[1] == pytest.approx(3.0)  # 2 + 0.5*(4-2)
        assert db.background_totals() == {1: pytest.approx(6.0)}
        assert db.background_array(2, per_step=False)[1] == pytest.approx(6.0)


class TestPriorHandoff:
    def test_prior_used_before_first_measurement(self):
        db = WorkDB(calibrate_prior=False)
        db.ensure_task(0, prior=5.0)
        assert db.load(0) == 5.0

    def test_blend_weight_grows_linearly_to_one(self):
        """The cost-model prior hands off to measurement over K samples."""
        db = WorkDB(window=8, prior_blend_samples=8, calibrate_prior=False)
        db.ensure_task(0, prior=5.0)
        db.record(0, 1.0)
        # one of eight samples: 1/8 measurement + 7/8 prior
        assert db.load(0) == pytest.approx(1.0 / 8 + 5.0 * 7 / 8)
        for _ in range(7):
            db.record(0, 1.0)
        # after K samples the prior's weight is exactly zero
        assert db.load(0) == pytest.approx(1.0)

    def test_blend_samples_one_replaces_prior_immediately(self):
        """The simulated runtime's semantics: one measured phase fully
        replaces the cost model."""
        db = WorkDB(prior_blend_samples=1, calibrate_prior=False)
        db.ensure_task(0, prior=5.0)
        db.record(0, 1.25)
        assert db.load(0) == 1.25

    def test_prior_calibration_rescales_unmeasured_tasks(self):
        """Cost-model units mix with seconds: unmeasured priors are rescaled
        by the measured/prior ratio of the measured tasks."""
        db = WorkDB()
        db.ensure_task(0, prior=1.0)
        db.ensure_task(1, prior=3.0)
        for _ in range(db.prior_blend_samples):
            db.record(0, 0.5)  # measured at half its prior
        assert db.load(0) == pytest.approx(0.5)
        assert db.load(1) == pytest.approx(3.0 * 0.5)

    def test_measurements_dominate_priors_in_loads_array(self):
        db = WorkDB(window=4, prior_blend_samples=4, calibrate_prior=False)
        db.ensure_task(0, prior=10.0)
        db.ensure_task(1, prior=10.0)
        for _ in range(4):
            db.record(0, 1.0)
        loads = db.loads()
        assert loads[0] == pytest.approx(1.0)
        assert loads[1] == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkDB(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            WorkDB(window=0)
        with pytest.raises(ValueError):
            WorkDB(prior_blend_samples=0)


class TestSerialization:
    def _populated(self):
        db = WorkDB(ewma_alpha=0.25, window=5, prior_blend_samples=3)
        rng = np.random.default_rng(1)
        for tid in range(6):
            db.ensure_task(
                tid, patches=(tid, (tid + 1) % 6), prior=0.5 + tid, owner=tid % 2
            )
        for _ in range(9):
            db.record_many(
                range(6), rng.uniform(1e-4, 5e-4, size=6), owners=[0, 0, 1, 1, 0, 1]
            )
            db.record_background(0, float(rng.uniform(1e-5, 2e-5)))
            db.mark_step()
        db.ensure_task(99, prior=2.0, migratable=False)
        return db

    def test_round_trip_preserves_everything(self):
        db = self._populated()
        clone = WorkDB.from_dict(json.loads(json.dumps(db.to_dict())))
        assert clone.ewma_alpha == db.ewma_alpha
        assert clone.window == db.window
        assert clone.prior_blend_samples == db.prior_blend_samples
        assert clone.measured_steps == db.measured_steps
        assert set(clone.tasks) == set(db.tasks)
        for tid, rec in db.tasks.items():
            got = clone.tasks[tid]
            assert got.patches == rec.patches
            assert got.owner == rec.owner
            assert got.prior == rec.prior
            assert got.migratable == rec.migratable
            assert got.ewma == rec.ewma
            assert got.n_samples == rec.n_samples
            assert got.total == rec.total
            assert list(got.window) == list(rec.window)
        np.testing.assert_array_equal(clone.loads(), db.loads())
        np.testing.assert_array_equal(clone.owner_loads(2), db.owner_loads(2))
        np.testing.assert_array_equal(
            clone.background_array(2), db.background_array(2)
        )

    def test_dump_and_load_file(self, tmp_path):
        db = self._populated()
        path = tmp_path / "workdb.json"
        db.dump(path)
        clone = WorkDB.load_file(path)
        np.testing.assert_array_equal(clone.loads(), db.loads())
        assert clone.measured_steps == db.measured_steps

    def test_reloaded_window_respects_maxlen(self, tmp_path):
        db = self._populated()
        path = tmp_path / "workdb.json"
        db.dump(path)
        clone = WorkDB.load_file(path)
        clone.record(0, 1.0)
        assert len(clone.tasks[0].window) == clone.window

    def test_reset_clears_state(self):
        db = self._populated()
        db.reset()
        assert not db.tasks
        assert db.measured_steps == 0
        assert db.background_totals() == {}


class TestAdapter:
    def _db(self):
        db = WorkDB(calibrate_prior=False)
        db.ensure_task(0, patches=(0,), prior=1.0, owner=0)
        db.ensure_task(1, patches=(0, 1), prior=2.0, owner=1)
        db.ensure_task(2, patches=(1,), prior=3.0, owner=1)
        db.ensure_task(3, patches=(2,), prior=4.0, owner=0, migratable=False)
        return db

    def test_derive_proxies_from_ownership(self):
        db = self._db()
        patch_home = {0: 0, 1: 1, 2: 0}
        # task 1 runs patch 0 on proc 1, away from its home: implied proxy
        assert derive_proxies(db, patch_home) == {(0, 1)}

    def test_build_problem_fields(self):
        db = self._db()
        patch_home = {0: 0, 1: 1, 2: 0}
        problem = build_lb_problem(db, 2, patch_home)
        assert isinstance(problem, LBProblem)
        assert problem.n_procs == 2
        # non-migratable task 3 is not a strategy-visible compute
        assert [c.index for c in problem.computes] == [0, 1, 2]
        assert [c.load for c in problem.computes] == [1.0, 2.0, 3.0]
        assert [c.proc for c in problem.computes] == [0, 1, 1]
        assert problem.patch_home == patch_home
        assert problem.existing_proxies == {(0, 1)}

    def test_build_problem_uses_measured_loads(self):
        db = self._db()
        for _ in range(db.prior_blend_samples):
            db.record(0, 0.25)
        problem = build_lb_problem(db, 2, {0: 0, 1: 1, 2: 0})
        assert problem.computes[0].load == pytest.approx(0.25)

    def test_explicit_proxies_and_background_pass_through(self):
        db = self._db()
        bg = np.array([0.5, 0.25])
        problem = build_lb_problem(
            db, 2, {0: 0, 1: 1}, existing_proxies={(5, 1)}, background=bg
        )
        assert problem.existing_proxies == {(5, 1)}
        np.testing.assert_array_equal(problem.background, bg)

    def test_task_ids_restrict_and_order(self):
        db = self._db()
        problem = build_lb_problem(db, 2, {0: 0, 1: 1}, task_ids=[2, 0])
        assert [c.index for c in problem.computes] == [2, 0]


class TestRobustPersistence:
    """Atomic dumps, corruption handling, and recovery accounting (PR 6)."""

    def _populated(self):
        db = WorkDB()
        db.ensure_task(0, patches=(0,), prior=1.0, owner=0)
        db.record(0, 2e-4)
        return db

    def test_dump_leaves_no_tmp_files(self, tmp_path):
        db = self._populated()
        path = tmp_path / "workdb.json"
        db.dump(path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["workdb.json"]

    def test_dump_is_valid_json_after_overwrite(self, tmp_path):
        db = self._populated()
        path = tmp_path / "workdb.json"
        db.dump(path)
        db.record(0, 9e-4)
        db.dump(path)
        clone = WorkDB.load_file(path)
        assert clone.tasks[0].n_samples == db.tasks[0].n_samples

    def test_load_truncated_file_raises_valueerror(self, tmp_path):
        db = self._populated()
        path = tmp_path / "workdb.json"
        db.dump(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="corrupt WorkDB dump"):
            WorkDB.load_file(path)

    def test_load_non_dict_json_raises_valueerror(self, tmp_path):
        path = tmp_path / "workdb.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="corrupt WorkDB dump"):
            WorkDB.load_file(path)

    def test_load_missing_file_raises_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            WorkDB.load_file(tmp_path / "nope.json")

    def test_note_recovery_accumulates(self):
        db = WorkDB()
        db.note_recovery("kills")
        db.note_recovery("kills")
        db.note_recovery("reassigned", 17)
        assert db.recovery == {"kills": 2, "reassigned": 17}

    def test_recovery_round_trips_through_dump(self, tmp_path):
        db = self._populated()
        db.note_recovery("respawns")
        path = tmp_path / "workdb.json"
        db.dump(path)
        clone = WorkDB.load_file(path)
        assert clone.recovery == {"respawns": 1}

    def test_old_dumps_without_recovery_still_load(self):
        db = self._populated()
        payload = db.to_dict()
        del payload["recovery"]
        clone = WorkDB.from_dict(json.loads(json.dumps(payload)))
        assert clone.recovery == {}

    def test_reset_clears_recovery(self):
        db = self._populated()
        db.note_recovery("hangs")
        db.reset()
        assert db.recovery == {}


class TestBackendField:
    """Kernel-backend provenance: samples from different backends never blend."""

    def _measured(self) -> WorkDB:
        db = WorkDB()
        db.ensure_task(0, patches=(0,), prior=2.0, owner=0)
        db.ensure_task(1, patches=(1,), prior=3.0, owner=1)
        db.set_backend("numpy")
        db.note_worker_backend(0, "numpy")
        db.record(0, 0.5)
        db.record(1, 0.7)
        db.mark_step()
        return db

    def test_set_backend_records_name(self):
        db = WorkDB()
        assert db.backend is None
        db.set_backend("numpy")
        assert db.backend == "numpy"

    def test_same_backend_keeps_measurements(self):
        db = self._measured()
        db.set_backend("numpy")
        assert db.tasks[0].n_samples == 1
        assert db.measured_steps == 1

    def test_backend_switch_resets_measurements_keeps_priors(self):
        db = self._measured()
        db.set_backend("numba")
        assert db.backend == "numba"
        # measurement state gone (a numba sample is not a numpy sample)
        assert db.tasks[0].n_samples == 0
        assert db.tasks[0].ewma == 0.0
        assert db.tasks[0].total == 0.0
        assert len(db.tasks[0].window) == 0
        assert db.measured_steps == 0
        # structural state survives: priors, affinity, ownership
        assert db.tasks[0].prior == 2.0
        assert db.tasks[0].patches == (0,)
        assert db.tasks[1].owner == 1
        # stale worker annotations from the other backend are dropped
        assert db.worker_backends == {}

    def test_switch_without_measurements_is_free(self):
        db = WorkDB()
        db.ensure_task(0, prior=1.0)
        db.set_backend("numpy")
        db.set_backend("numba")  # nothing measured: nothing to drop
        assert db.backend == "numba"
        assert db.tasks[0].prior == 1.0

    def test_roundtrip_through_dict(self):
        db = self._measured()
        clone = WorkDB.from_dict(json.loads(json.dumps(db.to_dict())))
        assert clone.backend == "numpy"
        assert clone.worker_backends == {0: "numpy"}

    def test_legacy_dumps_without_backend_still_load(self):
        db = self._measured()
        payload = db.to_dict()
        del payload["backend"]
        del payload["worker_backends"]
        clone = WorkDB.from_dict(json.loads(json.dumps(payload)))
        assert clone.backend is None
        assert clone.worker_backends == {}

    def test_reset_clears_backend(self):
        db = self._measured()
        db.reset()
        assert db.backend is None
        assert db.worker_backends == {}


class TestTaskKinds:
    """The kind field: per-kind load report, fixed-owner background, and
    serialization round-trip."""

    def test_kind_defaults_to_cell(self):
        db = WorkDB()
        db.ensure_task(0, prior=1.0)
        assert db.tasks[0].kind == "cell"

    def test_kind_loads_sum_per_kind(self):
        db = WorkDB()
        db.ensure_task(0, prior=1.0, kind="cell")
        db.ensure_task(1, prior=2.0, kind="bonded")
        db.ensure_task(2, prior=3.0, kind="bonded")
        db.ensure_task(3, prior=4.0, kind="kspace")
        loads = db.kind_loads()
        assert loads["cell"] == pytest.approx(1.0)
        assert loads["bonded"] == pytest.approx(5.0)
        assert loads["kspace"] == pytest.approx(4.0)

    def test_fixed_owner_loads_counts_only_pinned_tasks(self):
        db = WorkDB()
        db.ensure_task(0, prior=1.0, owner=0, migratable=True, kind="cell")
        db.ensure_task(1, prior=2.0, owner=1, migratable=False, kind="bonded")
        db.ensure_task(2, prior=3.0, owner=1, migratable=False, kind="bonded")
        db.ensure_task(3, prior=4.0, owner=5, migratable=False)  # out of range
        bg = db.fixed_owner_loads(2)
        assert bg.shape == (2,)
        assert bg[0] == 0.0  # task 0 is migratable
        assert bg[1] == pytest.approx(5.0)

    def test_kind_round_trips_through_dump(self):
        db = WorkDB()
        db.ensure_task(0, prior=1.0, kind="kspace")
        db.ensure_task(1, prior=2.0, kind="bonded", migratable=False, owner=1)
        clone = WorkDB.from_dict(db.to_dict())
        assert clone.tasks[0].kind == "kspace"
        assert clone.tasks[1].kind == "bonded"
        assert clone.tasks[1].migratable is False
