"""Lipid and bilayer builders."""

import numpy as np
import pytest

from repro.builder.assembler import SystemAssembler
from repro.builder.membrane import LIPID_HEAD_ATOMS, lipid_bilayer, lipid_molecule
from repro.util.rng import make_rng


class TestLipidMolecule:
    def test_atom_count(self):
        pos, q, names, topo = lipid_molecule(np.array([5.0, 5.0]), 10.0, 1, 12, make_rng(0))
        assert len(pos) == len(LIPID_HEAD_ATOMS) + 2 * 12
        assert len(names) == len(pos)

    def test_rejects_short_tail(self):
        with pytest.raises(ValueError):
            lipid_molecule(np.zeros(2), 0.0, 1, 2, make_rng(0))

    def test_tails_point_in_direction(self):
        pos, _, names, _ = lipid_molecule(np.array([0.0, 0.0]), 0.0, 1, 10, make_rng(0))
        tail = pos[np.array([n == "CTL" for n in names])]
        assert tail[:, 2].mean() > 2.0  # +z for direction=1
        pos2, _, names2, _ = lipid_molecule(np.array([0.0, 0.0]), 0.0, -1, 10, make_rng(0))
        tail2 = pos2[np.array([n == "CTL" for n in names2])]
        assert tail2[:, 2].mean() < -2.0

    def test_connected(self):
        pos, _, _, topo = lipid_molecule(np.zeros(2), 0.0, 1, 8, make_rng(1))
        adj = topo.bonded_neighbors(len(pos))
        seen, stack = {0}, [0]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        assert len(seen) == len(pos)

    def test_neutral_overall(self):
        _, q, _, _ = lipid_molecule(np.zeros(2), 0.0, 1, 8, make_rng(0))
        assert q.sum() == pytest.approx(0.0, abs=1e-9)


class TestBilayer:
    def test_places_requested_count(self):
        asm = SystemAssembler(np.array([60.0, 60.0, 60.0]))
        n = lipid_bilayer(asm, 30.0, (5.0, 55.0, 5.0, 55.0), 40, make_rng(0), tail_length=8)
        assert n == 40
        assert asm.n_atoms == 40 * (len(LIPID_HEAD_ATOMS) + 16)

    def test_two_leaflets_straddle_center(self):
        asm = SystemAssembler(np.array([60.0, 60.0, 60.0]))
        lipid_bilayer(asm, 30.0, (5.0, 55.0, 5.0, 55.0), 20, make_rng(0), tail_length=8)
        z = asm.current_positions()[:, 2]
        assert (z < 30.0).any() and (z > 30.0).any()
        # density concentrated near the center plane
        assert np.abs(z - 30.0).mean() < 16.0

    def test_degenerate_area_raises(self):
        asm = SystemAssembler(np.ones(3) * 60)
        with pytest.raises(ValueError):
            lipid_bilayer(asm, 30.0, (5.0, 5.0, 5.0, 55.0), 10, make_rng(0))

    def test_odd_count_split(self):
        asm = SystemAssembler(np.ones(3) * 60)
        n = lipid_bilayer(asm, 30.0, (5.0, 55.0, 5.0, 55.0), 7, make_rng(0), tail_length=6)
        assert n == 7
