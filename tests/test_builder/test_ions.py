"""Ion placement."""

import numpy as np
import pytest

from repro.builder.assembler import SystemAssembler
from repro.builder.ions import add_ions, ensure_ion_types
from repro.md.forcefield import default_forcefield
from repro.util.rng import make_rng


class TestIons:
    def test_exact_count(self):
        asm = SystemAssembler(np.ones(3) * 20)
        assert add_ions(asm, 7, make_rng(0)) == 7
        assert asm.n_atoms == 7

    def test_alternating_charges_near_neutral(self):
        asm = SystemAssembler(np.ones(3) * 20)
        add_ions(asm, 10, make_rng(0))
        s = asm.finalize()
        assert s.charges.sum() == pytest.approx(0.0)

    def test_odd_count_charge_one(self):
        asm = SystemAssembler(np.ones(3) * 20)
        add_ions(asm, 5, make_rng(0))
        assert asm.finalize().charges.sum() == pytest.approx(1.0)

    def test_ensure_ion_types_idempotent(self):
        ff = default_forcefield()
        ensure_ion_types(ff)
        n = ff.n_atom_types
        ensure_ion_types(ff)
        assert ff.n_atom_types == n
        assert "SOD" in ff and "CLA" in ff

    def test_crowded_box_raises(self):
        asm = SystemAssembler(np.ones(3) * 4.0)
        add_ions(asm, 2, make_rng(0), clearance=1.0)
        with pytest.raises(RuntimeError):
            add_ions(asm, 500, make_rng(1), clearance=3.5)
