"""Builder robustness across seeds (hypothesis-driven).

The exact-atom-count guarantee must hold for *any* seed, not just the
default — the benchmark systems are parameterized by seed for replica
studies.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.builder.benchmarks import br_like, mini_assembly
from repro.builder.membrane import lipid_molecule
from repro.builder.protein import protein_chain
from repro.builder.water import water_molecule
from repro.util.rng import make_rng


class TestBenchmarkSeeds:
    @pytest.mark.parametrize("seed", [2002, 1, 77])
    def test_br_exact_count_any_seed(self, seed):
        s = br_like(seed=seed)
        assert s.n_atoms == 3_762

    @pytest.mark.parametrize("seed", [5, 42])
    def test_mini_assembly_any_seed(self, seed):
        s = mini_assembly(seed=seed)
        assert s.n_atoms == 3_100
        assert {"WAT", "PROT", "LIP"} <= set(s.segment_labels)

    def test_different_seeds_different_structures(self):
        a = br_like(seed=2002)
        b = br_like(seed=1)
        assert not np.allclose(a.positions, b.positions)


class TestComponentProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_water_geometry_any_seed(self, seed):
        pos, q, names, topo = water_molecule(np.full(3, 10.0), make_rng(seed))
        d1 = np.linalg.norm(pos[1] - pos[0])
        d2 = np.linalg.norm(pos[2] - pos[0])
        assert d1 == pytest.approx(0.9572, rel=1e-9)
        assert d2 == pytest.approx(0.9572, rel=1e-9)
        assert q.sum() == pytest.approx(0.0)

    @given(st.integers(1, 40), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_protein_chain_atom_formula(self, n_res, seed):
        rng = make_rng(seed)
        sc = rng.integers(2, 9, size=n_res)
        pos, q, names, topo = protein_chain(
            n_res, np.zeros(3), make_rng(seed), sidechain_lengths=sc
        )
        assert len(pos) == 6 * n_res + int(sc.sum())
        topo.validate(len(pos))

    @given(st.integers(3, 20), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_lipid_atom_formula(self, tail, seed):
        pos, q, names, topo = lipid_molecule(
            np.zeros(2), 10.0, 1, tail, make_rng(seed)
        )
        assert len(pos) == 9 + 2 * tail
        topo.validate(len(pos))
        assert q.sum() == pytest.approx(0.0, abs=1e-9)
