"""Protein chain builder: atom accounting, topology sanity, confinement."""

import numpy as np
import pytest

from repro.builder.protein import protein_chain
from repro.util.rng import make_rng


class TestAtomAccounting:
    def test_exact_atom_count_with_explicit_sidechains(self):
        sc = np.array([2, 3, 4, 5, 6])
        pos, q, names, topo = protein_chain(5, np.zeros(3), make_rng(0), sidechain_lengths=sc)
        assert len(pos) == 5 * 6 + sc.sum()
        assert len(q) == len(names) == len(pos)

    def test_rejects_bad_sidechain_length(self):
        with pytest.raises(ValueError):
            protein_chain(3, np.zeros(3), make_rng(0), sidechain_lengths=np.array([1, 5, 5]))

    def test_rejects_wrong_length_array(self):
        with pytest.raises(ValueError):
            protein_chain(3, np.zeros(3), make_rng(0), sidechain_lengths=np.array([5, 5]))

    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            protein_chain(0, np.zeros(3), make_rng(0))


class TestTopologySanity:
    def test_connected_backbone(self):
        """Every atom is reachable from atom 0 through bonds (one molecule)."""
        pos, _, _, topo = protein_chain(8, np.zeros(3), make_rng(3))
        n = len(pos)
        adj = topo.bonded_neighbors(n)
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        assert len(seen) == n

    def test_term_counts_scale_with_residues(self):
        _, _, _, t1 = protein_chain(5, np.zeros(3), make_rng(0),
                                    sidechain_lengths=np.full(5, 4))
        _, _, _, t2 = protein_chain(10, np.zeros(3), make_rng(0),
                                    sidechain_lengths=np.full(10, 4))
        assert t2.n_bonds > t1.n_bonds
        assert t2.n_dihedrals > t1.n_dihedrals
        assert t1.n_impropers == 5 and t2.n_impropers == 10

    def test_bond_lengths_reasonable(self):
        pos, _, _, topo = protein_chain(6, np.zeros(3), make_rng(1))
        idx, _, _ = topo.bond_arrays()
        lengths = np.linalg.norm(pos[idx[:, 1]] - pos[idx[:, 0]], axis=1)
        assert lengths.max() < 3.0
        assert lengths.min() > 0.5

    def test_near_neutral_charge(self):
        _, q, _, _ = protein_chain(10, np.zeros(3), make_rng(2))
        assert abs(q.sum()) < 2.0


class TestConfinement:
    def test_confined_chain_stays_near_center(self):
        center = np.array([50.0, 50.0, 50.0])
        pos, _, _, _ = protein_chain(
            100, center, make_rng(5), confine_center=center, confine_radius=12.0
        )
        r = np.linalg.norm(pos - center, axis=1)
        assert r.max() < 12.0 + 15.0  # radius + a few bond lengths of slop

    def test_unconfined_chain_wanders(self):
        center = np.array([50.0, 50.0, 50.0])
        pos, _, _, _ = protein_chain(100, center, make_rng(5))
        r = np.linalg.norm(pos - center, axis=1)
        assert r.max() > 25.0

    def test_ca_spacing(self):
        pos, _, _, _ = protein_chain(10, np.zeros(3), make_rng(0),
                                     sidechain_lengths=np.full(10, 2))
        # CA atoms are index 2 within each 8-atom residue
        cas = pos[[2 + 8 * i for i in range(10)]]
        d = np.linalg.norm(np.diff(cas, axis=0), axis=1)
        np.testing.assert_allclose(d, 3.8, atol=0.01)
