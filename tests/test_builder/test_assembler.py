"""SystemAssembler composition."""

import numpy as np
import pytest

from repro.builder.assembler import SystemAssembler
from repro.builder.water import water_molecule
from repro.md.forcefield import STANDARD_BOND
from repro.md.topology import Topology
from repro.util.rng import make_rng


class TestAssembler:
    def test_offsets_accumulate(self):
        asm = SystemAssembler(np.ones(3) * 20)
        rng = make_rng(0)
        for i in range(3):
            pos, q, names, topo = water_molecule(np.full(3, 5.0 + i), rng)
            offset = asm.add_component(pos, q, names, topo, "WAT")
            assert offset == 3 * i
        assert asm.n_atoms == 9
        s = asm.finalize()
        idx, _, _ = s.topology.bond_arrays()
        # each water contributes O-H1, O-H2 with proper offsets
        assert idx.max() == 8

    def test_mismatched_arrays_rejected(self):
        asm = SystemAssembler(np.ones(3) * 20)
        with pytest.raises(ValueError):
            asm.add_component(
                np.zeros((2, 3)), np.zeros(3), ["OT", "HT"], Topology(), "X"
            )

    def test_unknown_type_name_rejected(self):
        asm = SystemAssembler(np.ones(3) * 20)
        with pytest.raises(KeyError):
            asm.add_component(
                np.zeros((1, 3)), np.zeros(1), ["NOPE"], Topology(), "X"
            )

    def test_empty_finalize_rejected(self):
        with pytest.raises(ValueError):
            SystemAssembler(np.ones(3) * 20).finalize()

    def test_segments_tracked(self):
        asm = SystemAssembler(np.ones(3) * 20)
        rng = make_rng(0)
        pos, q, names, topo = water_molecule(np.full(3, 5.0), rng)
        asm.add_component(pos, q, names, topo, "WAT")
        s = asm.finalize()
        assert s.segment_labels == ["WAT"] * 3

    def test_finalize_wraps_by_default(self):
        asm = SystemAssembler(np.ones(3) * 10)
        topo = Topology()
        topo.add_bond(0, 1, STANDARD_BOND)
        asm.add_component(
            np.array([[12.0, 0.0, 0.0], [12.5, 0.0, 0.0]]),
            np.zeros(2),
            ["CT", "CT"],
            topo,
            "X",
        )
        s = asm.finalize()
        assert np.all(s.positions < s.box)

    def test_current_positions_copy(self):
        asm = SystemAssembler(np.ones(3) * 20)
        rng = make_rng(0)
        pos, q, names, topo = water_molecule(np.full(3, 5.0), rng)
        asm.add_component(pos, q, names, topo, "WAT")
        view = asm.current_positions()
        view[0, 0] = 999.0
        assert asm.current_positions()[0, 0] != 999.0
