"""Water builder: geometry, charges, topology, filling."""

import numpy as np
import pytest

from repro.builder.assembler import SystemAssembler
from repro.builder.water import fill_water, water_box_positions, water_molecule
from repro.util.rng import make_rng


class TestWaterMolecule:
    def test_geometry(self):
        pos, q, names, topo = water_molecule(np.array([5.0, 5.0, 5.0]), make_rng(0))
        assert pos.shape == (3, 3)
        d1 = np.linalg.norm(pos[1] - pos[0])
        d2 = np.linalg.norm(pos[2] - pos[0])
        assert d1 == pytest.approx(0.9572, rel=1e-6)
        assert d2 == pytest.approx(0.9572, rel=1e-6)
        cos = np.dot(pos[1] - pos[0], pos[2] - pos[0]) / (d1 * d2)
        assert np.degrees(np.arccos(cos)) == pytest.approx(104.52, rel=1e-4)

    def test_neutral(self):
        _, q, _, _ = water_molecule(np.zeros(3), make_rng(0))
        assert q.sum() == pytest.approx(0.0)

    def test_topology(self):
        _, _, names, topo = water_molecule(np.zeros(3), make_rng(0))
        assert names == ["OT", "HT", "HT"]
        assert topo.n_bonds == 2
        assert topo.n_angles == 1

    def test_random_orientation_differs(self):
        p1, _, _, _ = water_molecule(np.zeros(3), make_rng(1))
        p2, _, _, _ = water_molecule(np.zeros(3), make_rng(2))
        assert not np.allclose(p1, p2)


class TestWaterBoxPositions:
    def test_exact_count(self):
        box = np.array([20.0, 20.0, 20.0])
        sites = water_box_positions(box, 100, make_rng(0))
        assert sites.shape == (100, 3)

    def test_zero(self):
        assert water_box_positions(np.ones(3) * 10, 0, make_rng(0)).shape == (0, 3)

    def test_anisotropic_box_covered(self):
        box = np.array([40.0, 10.0, 10.0])
        sites = water_box_positions(box, 120, make_rng(0))
        wrapped = np.mod(sites, box)
        # spread along the long axis
        assert wrapped[:, 0].max() - wrapped[:, 0].min() > 25.0


class TestFillWater:
    def test_exact_molecule_count(self):
        asm = SystemAssembler(np.array([15.0, 15.0, 15.0]))
        added = fill_water(asm, 50, make_rng(0))
        assert added == 50
        assert asm.n_atoms == 150

    def test_respects_solute_clearance(self):
        from repro.builder.ions import add_ions

        asm = SystemAssembler(np.array([15.0, 15.0, 15.0]))
        add_ions(asm, 5, make_rng(1))
        solute = asm.current_positions().copy()
        fill_water(asm, 30, make_rng(0), clearance=2.5)
        waters = asm.current_positions()[5:]
        from scipy.spatial import cKDTree

        tree = cKDTree(np.mod(solute, asm.box), boxsize=asm.box)
        d, _ = tree.query(np.mod(waters, asm.box), k=1)
        assert d.min() > 2.5

    def test_impossible_fill_raises(self):
        asm = SystemAssembler(np.array([5.0, 5.0, 5.0]))
        with pytest.raises(RuntimeError):
            fill_water(asm, 5000, make_rng(0))
