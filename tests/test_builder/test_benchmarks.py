"""Benchmark assemblies: exact paper atom counts and structure.

The full ApoA-I and BC1 builders run in the benchmark harness; here we
verify the specs, the small fixtures, and bR (which is fast to build).
"""

import numpy as np
import pytest

from repro.builder.benchmarks import (
    BENCHMARK_SPECS,
    _ion_count_for_remainder,
    _sidechain_pattern,
    br_like,
    mini_assembly,
    small_water_box,
    tiny_peptide,
)
from repro.core.decomposition import SpatialDecomposition


class TestSpecs:
    def test_paper_atom_counts(self):
        assert BENCHMARK_SPECS["apoa1"].n_atoms == 92_224
        assert BENCHMARK_SPECS["bc1"].n_atoms == 206_617
        assert BENCHMARK_SPECS["br"].n_atoms == 3_762

    def test_paper_patch_grids(self):
        assert BENCHMARK_SPECS["apoa1"].patch_grid == (7, 7, 5)
        assert BENCHMARK_SPECS["bc1"].patch_grid == (9, 7, 6)
        assert BENCHMARK_SPECS["br"].patch_grid == (4, 3, 3)


class TestHelpers:
    @pytest.mark.parametrize("n", [1, 4, 5, 7, 220, 341])
    def test_sidechain_pattern_sums_exactly(self, n):
        pat = _sidechain_pattern(n, mean=5)
        assert pat.sum() == 5 * n
        assert pat.min() >= 2 and pat.max() <= 8

    def test_ion_count_divisibility(self):
        for remaining in range(60, 90):
            n_ions, n_waters = _ion_count_for_remainder(remaining, 4)
            assert n_ions + 3 * n_waters == remaining
            assert n_ions >= 4

    def test_ion_count_rejects_negative(self):
        with pytest.raises(ValueError):
            _ion_count_for_remainder(2, 4)


class TestSmallSystems:
    def test_water_box_count_and_density(self):
        s = small_water_box(64, seed=3)
        assert s.n_atoms == 192
        density = (64) / np.prod(s.box)
        assert density == pytest.approx(0.0334, rel=1e-6)

    def test_tiny_peptide(self):
        s = tiny_peptide(5)
        assert s.topology.n_bonds > 0
        assert all(label == "PROT" for label in s.segment_labels)

    def test_mini_assembly_structure(self, assembly):
        assert assembly.n_atoms == 3_100
        labels = set(assembly.segment_labels)
        assert {"WAT", "PROT", "LIP", "ION"} <= labels
        # patch grid is 2x2x2 at the 12 A cutoff
        d = SpatialDecomposition(assembly, cutoff=12.0)
        assert tuple(d.dims) == (2, 2, 2)


class TestBrLike:
    def test_exact_atom_count_and_grid(self):
        s = br_like()
        assert s.n_atoms == 3_762
        d = SpatialDecomposition(s, cutoff=12.0)
        assert tuple(d.dims) == BENCHMARK_SPECS["br"].patch_grid

    def test_vacuum_protein_is_inhomogeneous(self):
        """bR's point: most patches are nearly empty (load imbalance)."""
        s = br_like()
        d = SpatialDecomposition(s, cutoff=12.0)
        sizes = np.array([len(a) for a in d.patch_atoms])
        assert (sizes == 0).sum() > 5
        assert sizes.max() > 5 * max(sizes.mean(), 1)
