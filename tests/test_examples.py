"""Example scripts stay runnable (smoke tests via subprocess).

Only the fast examples run here; the heavyweight ones (full LB demos,
timeline traces) are exercised manually and via the benchmark suite, which
covers the same code paths.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    ("grainsize_study.py", "Amdahl corollary"),
    ("decomposition_comparison.py", "Communication / computation ratio"),
    ("ewald_electrostatics.py", "Madelung constant"),
]


@pytest.mark.parametrize("script,marker", FAST_EXAMPLES)
def test_example_runs_and_produces_output(script, marker):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout


def test_all_examples_importable_as_scripts():
    """Every example compiles (syntax) without executing."""
    import py_compile

    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 9
    for script in scripts:
        py_compile.compile(str(script), doraise=True)
