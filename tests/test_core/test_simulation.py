"""The full parallel simulation: protocol completion, LB improvement,
scaling behaviour, configuration validation."""

import numpy as np
import pytest

from repro.core.problem import DecomposedProblem
from repro.core.simulation import (
    DEFAULT_COST_MODEL,
    ParallelSimulation,
    SimulationConfig,
)
from repro.runtime.machine import ASCI_RED, T3E_900


@pytest.fixture(scope="module")
def assembly_problem(request):
    assembly = request.getfixturevalue("assembly")
    return DecomposedProblem.build(assembly, DEFAULT_COST_MODEL)


class TestConfigValidation:
    def test_rejects_bad_procs(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_procs=0)

    def test_rejects_bad_measure_window(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_procs=1, steps_per_phase=3, measure_last=5)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_procs=1, lb_schedule=("nonsense",))

    def test_combo_strategy_accepted(self):
        SimulationConfig(n_procs=1, lb_schedule=("greedy+refine",))


class TestProtocol:
    def test_all_steps_complete(self, assembly, assembly_problem):
        cfg = SimulationConfig(n_procs=4, steps_per_phase=5, measure_last=2)
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        for ph in res.phases:
            assert len(ph.timings.completion_times) == 5

    def test_phase_count_follows_schedule(self, assembly, assembly_problem):
        cfg = SimulationConfig(n_procs=2, lb_schedule=("greedy+refine", "refine"))
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        assert len(res.phases) == 3
        assert res.phases[0].strategy_applied == "static"
        assert res.phases[1].strategy_applied == "greedy+refine"
        assert res.phases[2].strategy_applied == "refine"

    def test_single_processor_matches_sequential_reference(
        self, assembly, assembly_problem
    ):
        cfg = SimulationConfig(n_procs=1, lb_schedule=())
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        # on one processor there is no remote messaging: only local overheads
        assert res.time_per_step == pytest.approx(res.sequential_reference_s, rel=0.05)

    def test_step_times_positive_and_steady(self, assembly, assembly_problem):
        cfg = SimulationConfig(n_procs=4)
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        diffs = res.final.timings.step_times
        assert np.all(diffs > 0)
        tail = diffs[-3:]
        assert tail.max() / tail.min() < 1.5  # steady state


class TestLoadBalancing:
    def test_lb_improves_step_time(self, assembly, assembly_problem):
        cfg = SimulationConfig(n_procs=6)
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        static = res.phases[0].timings.time_per_step
        balanced = res.final.timings.time_per_step
        assert balanced < static

    def test_lb_reduces_imbalance_metric(self, assembly, assembly_problem):
        cfg = SimulationConfig(n_procs=6)
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        assert (
            res.final.stats["imbalance_ratio"]
            <= res.phases[0].stats["imbalance_ratio"] + 1e-9
        )

    def test_measured_loads_populated(self, assembly, assembly_problem):
        cfg = SimulationConfig(n_procs=4)
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        ph = res.phases[0]
        assert len(ph.measured_loads) > 0
        assert all(v >= 0 for v in ph.measured_loads.values())

    def test_model_load_mode(self, assembly, assembly_problem):
        cfg = SimulationConfig(n_procs=4, use_measured_loads=False)
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        assert res.time_per_step > 0


class TestScaling:
    def test_speedup_grows_with_processors(self, assembly, assembly_problem):
        speeds = []
        for procs in (1, 2, 4, 8):
            cfg = SimulationConfig(n_procs=procs)
            res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
            speeds.append(res.speedup)
        assert speeds == sorted(speeds)
        assert speeds[-1] > 4.0

    def test_more_processors_than_patches_still_works(
        self, assembly, assembly_problem
    ):
        """8 patches, 16 processors: grainsize splitting lets the balancer
        use the patchless processors (the paper's whole point)."""
        cfg = SimulationConfig(n_procs=16)
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        cfg1 = SimulationConfig(n_procs=8)
        res8 = ParallelSimulation(assembly, cfg1, problem=assembly_problem).run()
        assert res.time_per_step < res8.time_per_step

    def test_faster_machine_faster_steps(self, assembly, assembly_problem):
        r_red = ParallelSimulation(
            assembly, SimulationConfig(n_procs=4, machine=ASCI_RED),
            problem=assembly_problem,
        ).run()
        r_t3e = ParallelSimulation(
            assembly, SimulationConfig(n_procs=4, machine=T3E_900),
            problem=assembly_problem,
        ).run()
        assert r_t3e.time_per_step < r_red.time_per_step

    def test_gflops_computed(self, assembly, assembly_problem):
        cfg = SimulationConfig(n_procs=4)
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        assert res.gflops > 0
        assert res.flops_per_step > 1e6


class TestOptimizationToggles:
    def test_naive_multicast_not_faster(self, assembly, assembly_problem):
        """At identical placement (no LB divergence) the naive multicast can
        only add packing work, never remove it."""
        opt = ParallelSimulation(
            assembly,
            SimulationConfig(n_procs=8, optimized_multicast=True, lb_schedule=()),
            problem=assembly_problem,
        ).run()
        naive = ParallelSimulation(
            assembly,
            SimulationConfig(n_procs=8, optimized_multicast=False, lb_schedule=()),
            problem=assembly_problem,
        ).run()
        assert naive.time_per_step >= opt.time_per_step * 0.999

    def test_trace_final_phase(self, assembly, assembly_problem):
        cfg = SimulationConfig(n_procs=2, trace_final_phase=True)
        res = ParallelSimulation(assembly, cfg, problem=assembly_problem).run()
        assert res.final.trace is not None
        assert len(res.final.trace.records) > 0
        assert res.phases[0].trace is None
