"""Numeric-mode validation: the parallel protocol computes the same physics
as the sequential engine (paper V1 — 'not a bad sequential algorithm')."""

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.core.problem import DecomposedProblem
from repro.core.simulation import (
    DEFAULT_COST_MODEL,
    ParallelSimulation,
    SimulationConfig,
)
from repro.md.engine import SequentialEngine
from repro.md.nonbonded import NonbondedOptions


class TestStaticEquivalence:
    def test_energies_match_sequential_at_x0(self, assembly):
        eng = SequentialEngine(assembly.copy(), NonbondedOptions(cutoff=12.0))
        eng.compute_forces()
        ref = eng.report()

        cfg = SimulationConfig(
            n_procs=3, numeric=True, lb_schedule=(), steps_per_phase=1, measure_last=1
        )
        res = ParallelSimulation(assembly, cfg).run()
        e = res.final.backend.energies(0)
        assert e["lj"] == pytest.approx(ref.lj, rel=1e-12)
        assert e["elec"] == pytest.approx(ref.elec, rel=1e-12)
        assert e["bonded"] == pytest.approx(ref.bonded.total, rel=1e-12)

    @pytest.mark.parametrize("n_procs", [1, 2, 5])
    def test_processor_count_does_not_change_physics(self, assembly, n_procs):
        cfg = SimulationConfig(
            n_procs=n_procs, numeric=True, lb_schedule=(), steps_per_phase=1,
            measure_last=1,
        )
        res = ParallelSimulation(assembly, cfg).run()
        e = res.final.backend.energies(0)
        cfg1 = SimulationConfig(
            n_procs=1, numeric=True, lb_schedule=(), steps_per_phase=1, measure_last=1
        )
        ref = ParallelSimulation(assembly, cfg1).run().final.backend.energies(0)
        for key in ("lj", "elec", "bonded"):
            assert e[key] == pytest.approx(ref[key], rel=1e-10)


class TestTrajectoryEquivalence:
    def test_three_step_energies_match_sequential(self):
        w = small_water_box(100, seed=4)
        w.assign_velocities(300.0, seed=9)

        seq = SequentialEngine(w.copy(), NonbondedOptions(cutoff=6.0))
        reports = [seq.step() for _ in range(3)]

        cfg = SimulationConfig(
            n_procs=4,
            numeric=True,
            dt=1.0,
            cutoff=6.0,
            lb_schedule=(),
            steps_per_phase=4,
            measure_last=1,
        )
        res = ParallelSimulation(w, cfg).run()
        be = res.final.backend
        for r in (1, 2, 3):
            e = be.energies(r)
            ref = reports[r - 1]
            assert e["lj"] == pytest.approx(ref.lj, abs=1e-8)
            assert e["elec"] == pytest.approx(ref.elec, abs=1e-8)
            assert e["kinetic"] == pytest.approx(ref.kinetic, abs=1e-8)

    def test_energy_conserved_in_parallel_nve(self):
        w = small_water_box(64, seed=3)
        w.assign_velocities(300.0, seed=1)
        cfg = SimulationConfig(
            n_procs=3,
            numeric=True,
            dt=0.5,
            cutoff=6.0,
            lb_schedule=(),
            steps_per_phase=20,
            measure_last=1,
        )
        res = ParallelSimulation(w, cfg).run()
        be = res.final.backend
        totals = []
        for r in range(1, 20):
            e = be.energies(r)
            totals.append(e["lj"] + e["elec"] + e["bonded"] + e["kinetic"])
        totals = np.array(totals)
        assert np.abs(totals - totals[0]).max() / abs(totals[0]) < 1e-2

    def test_grainsize_split_does_not_change_forces(self, assembly):
        from repro.core.computes import GrainsizeConfig

        base = SimulationConfig(
            n_procs=2, numeric=True, lb_schedule=(), steps_per_phase=1,
            measure_last=1,
            grainsize=GrainsizeConfig(split_self=False, split_pairs=False),
        )
        split = SimulationConfig(
            n_procs=2, numeric=True, lb_schedule=(), steps_per_phase=1,
            measure_last=1,
            grainsize=GrainsizeConfig(target_load_s=0.001),
        )
        e1 = ParallelSimulation(assembly, base).run().final.backend.energies(0)
        e2 = ParallelSimulation(assembly, split).run().final.backend.energies(0)
        for key in ("lj", "elec", "bonded"):
            assert e1[key] == pytest.approx(e2[key], rel=1e-9)


class TestComputePairCache:
    """Per-compute Verlet candidate caches in the numeric backend."""

    def _backends(self, skin):
        from repro.core.numeric import NumericBackend

        w = small_water_box(64, seed=5)
        return NumericBackend(w, NonbondedOptions(cutoff=6.0), pairlist_skin=skin)

    def test_cached_energies_match_uncached_over_drift(self):
        cached = self._backends(1.5)
        uncached = self._backends(0.0)
        atoms = np.arange(cached.system.n_atoms)
        rng = np.random.default_rng(2)
        for step in range(4):
            cached.nonbonded(step, atoms, None, 0, 1, cache_key="self")
            uncached.nonbonded(step, atoms, None, 0, 1, cache_key="self")
            assert cached.energies(step) == uncached.energies(step)
            np.testing.assert_array_equal(cached.forces, uncached.forces)
            cached.forces[:] = 0.0
            uncached.forces[:] = 0.0
            drift = 0.05 * rng.normal(size=cached.positions.shape)
            cached.positions += drift
            uncached.positions += drift
        assert cached.pairlist_reuses > 0
        assert uncached.pairlist_builds == 0  # skin 0 disables the cache

    def test_large_motion_triggers_rebuild(self):
        backend = self._backends(1.0)
        atoms = np.arange(backend.system.n_atoms)
        backend.nonbonded(0, atoms, None, 0, 1, cache_key="self")
        assert backend.pairlist_builds == 1
        backend.positions[0] += 0.8  # beyond skin/2
        backend.nonbonded(1, atoms, None, 0, 1, cache_key="self")
        assert backend.pairlist_builds == 2

    def test_invalidate_pair_caches(self):
        backend = self._backends(1.5)
        atoms = np.arange(backend.system.n_atoms)
        backend.nonbonded(0, atoms, None, 0, 1, cache_key="self")
        assert backend._pair_cache
        backend.invalidate_pair_caches()
        assert not backend._pair_cache
