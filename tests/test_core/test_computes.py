"""Compute descriptors: counts, loads, grainsize splitting, bonded split."""

import numpy as np
import pytest

from repro.core.computes import (
    GrainsizeConfig,
    build_bonded_computes,
    build_nonbonded_computes,
)
from repro.core.decomposition import SpatialDecomposition
from repro.core.simulation import DEFAULT_COST_MODEL


@pytest.fixture(scope="module")
def decomp(request):
    assembly = request.getfixturevalue("assembly")
    return SpatialDecomposition(assembly, cutoff=12.0)


class TestGrainsizeConfig:
    def test_no_split_below_target(self):
        g = GrainsizeConfig(target_load_s=0.01)
        assert g.parts_for(0.005, True) == 1

    def test_split_count(self):
        g = GrainsizeConfig(target_load_s=0.01)
        assert g.parts_for(0.035, True) == 4

    def test_disabled(self):
        g = GrainsizeConfig(target_load_s=0.01)
        assert g.parts_for(1.0, False) == 1

    def test_max_parts_cap(self):
        g = GrainsizeConfig(target_load_s=0.001, max_parts=8)
        assert g.parts_for(1.0, True) == 8


class TestNonbondedComputes:
    def test_object_counts_without_splitting(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        g = GrainsizeConfig(split_self=False, split_pairs=False)
        descs = build_nonbonded_computes(d, DEFAULT_COST_MODEL, g)
        # 8 self + 28 pair objects on the 2x2x2 periodic grid
        assert len(descs) == d.n_patches + len(d.neighbor_pairs())

    def test_splitting_preserves_total_pairs(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        no_split = build_nonbonded_computes(
            d, DEFAULT_COST_MODEL, GrainsizeConfig(split_self=False, split_pairs=False)
        )
        split = build_nonbonded_computes(
            d, DEFAULT_COST_MODEL, GrainsizeConfig(target_load_s=0.002)
        )
        assert sum(x.n_pairs for x in split) == sum(x.n_pairs for x in no_split)
        assert len(split) > len(no_split)

    def test_split_respects_target(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        target = 0.002
        descs = build_nonbonded_computes(
            d, DEFAULT_COST_MODEL, GrainsizeConfig(target_load_s=target, max_parts=256)
        )
        # striped splitting makes parts nearly equal: allow 2x slop for
        # rounding on tiny patches
        assert max(x.load for x in descs) < 2.5 * target

    def test_all_migratable(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        descs = build_nonbonded_computes(d, DEFAULT_COST_MODEL)
        assert all(x.migratable for x in descs)

    def test_indices_contiguous(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        descs = build_nonbonded_computes(d, DEFAULT_COST_MODEL)
        assert [x.index for x in descs] == list(range(len(descs)))

    def test_loads_positive_for_nonempty(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        descs = build_nonbonded_computes(d, DEFAULT_COST_MODEL)
        for x in descs:
            assert x.load >= 0.0
            if x.n_pairs > 0:
                assert x.load > 0.0

    def test_label(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        descs = build_nonbonded_computes(d, DEFAULT_COST_MODEL)
        assert "nb_" in descs[0].label()


class TestBondedComputes:
    def test_terms_partitioned_exactly(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        a = d.assign_bonded_terms()
        descs = build_bonded_computes(d, a, DEFAULT_COST_MODEL)
        topo = assembly.topology
        for kind, total in (
            ("bond", topo.n_bonds),
            ("angle", topo.n_angles),
            ("dihedral", topo.n_dihedrals),
            ("improper", topo.n_impropers),
        ):
            got = sorted(
                int(t)
                for x in descs
                for t in x.term_indices.get(kind, np.zeros(0, dtype=np.int64))
            )
            assert got == list(range(total)), kind

    def test_intra_migratable_inter_pinned(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        a = d.assign_bonded_terms()
        descs = build_bonded_computes(d, a, DEFAULT_COST_MODEL)
        kinds = {x.kind for x in descs}
        assert kinds == {"bonded_intra", "bonded_inter"}
        for x in descs:
            assert x.migratable == (x.kind == "bonded_intra")

    def test_merged_mode_single_object_per_patch(self, assembly):
        """split_intra_inter=False: the pre-§4.2.2 design."""
        d = SpatialDecomposition(assembly, cutoff=12.0)
        a = d.assign_bonded_terms()
        descs = build_bonded_computes(d, a, DEFAULT_COST_MODEL, split_intra_inter=False)
        assert all(x.kind == "bonded_inter" for x in descs)
        assert all(not x.migratable for x in descs)
        patches = [x.patches[0] for x in descs]
        assert len(set(patches)) == len(patches)  # one per patch

    def test_index_offset(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        a = d.assign_bonded_terms()
        descs = build_bonded_computes(d, a, DEFAULT_COST_MODEL, index_offset=100)
        assert descs[0].index == 100

    def test_grainsize_splits_dense_intra(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        a = d.assign_bonded_terms()
        tight = build_bonded_computes(
            d, a, DEFAULT_COST_MODEL, grainsize=GrainsizeConfig(target_load_s=1e-4)
        )
        loose = build_bonded_computes(d, a, DEFAULT_COST_MODEL)
        assert len(tight) > len(loose)
