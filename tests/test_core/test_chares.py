"""Chare protocol unit tests: a hand-wired two-patch scenario.

These tests exercise the §3.1 message flow in isolation (home patch ->
proxy -> compute -> deposit -> force message -> integrate) without the
simulation driver, so protocol bugs localize here.
"""

import numpy as np
import pytest

from repro.core.chares import (
    HomePatchChare,
    NonbondedComputeChare,
    ProxyPatchChare,
)
from repro.runtime.machine import MachineModel
from repro.runtime.scheduler import Scheduler

IDEAL = MachineModel(
    name="ideal",
    cpu_factor=1.0,
    send_overhead_s=0.0,
    recv_overhead_s=0.0,
    pack_per_byte_s=0.0,
    latency_s=0.001,
    bandwidth_Bps=1e30,
    local_send_overhead_s=0.0,
)


def wire_two_patch_scenario(n_steps=3, compute_load=0.01):
    """Patch A on proc 0, patch B on proc 1; one pair compute on proc 1
    (with a proxy for A), plus one self compute per patch co-located."""
    sched = Scheduler(2, IDEAL)
    atoms_a = np.arange(4)
    atoms_b = np.arange(4, 8)

    home_a = HomePatchChare(0, atoms_a, 0.002, n_steps)
    home_b = HomePatchChare(1, atoms_b, 0.002, n_steps)
    oid_a = sched.register(home_a, 0)
    oid_b = sched.register(home_b, 1)

    self_a = NonbondedComputeChare((0,), compute_load)
    self_b = NonbondedComputeChare((1,), compute_load)
    pair = NonbondedComputeChare((0, 1), compute_load)
    oid_sa = sched.register(self_a, 0)
    oid_sb = sched.register(self_b, 1)
    oid_pair = sched.register(pair, 1)

    proxy_a = ProxyPatchChare(0, oid_a, len(atoms_a))
    oid_proxy = sched.register(proxy_a, 1)

    # wiring
    home_a.local_compute_ids = [oid_sa]
    home_a.proxy_ids = [oid_proxy]
    home_a.expected_contributions = 2  # self_a + proxy message
    home_b.local_compute_ids = [oid_sb, oid_pair]
    home_b.proxy_ids = []
    home_b.expected_contributions = 2
    proxy_a.local_compute_ids = [oid_pair]
    proxy_a.expected_deposits = 1

    self_a.deposit_ids = [oid_a]
    self_b.deposit_ids = [oid_b]
    pair.deposit_ids = [oid_proxy, oid_b]
    # pair needs both patches: B arrives via home notification, A via proxy
    return sched, (home_a, home_b, self_a, self_b, pair, proxy_a)


class TestProtocol:
    def test_all_rounds_complete(self):
        sched, chares = wire_two_patch_scenario(n_steps=3)
        home_a, home_b = chares[0], chares[1]
        done = []
        sched.set_control_handler(lambda t, p: done.append(p))
        sched.inject(home_a.object_id, "start", {})
        sched.inject(home_b.object_id, "start", {})
        sched.run()
        assert sched.quiescent()
        steps = [p for p in done if p[0] == "step_done"]
        assert len(steps) == 6  # 2 patches x 3 rounds
        assert home_a.round == 3 and home_b.round == 3

    def test_compute_executes_once_per_round(self):
        sched, chares = wire_two_patch_scenario(n_steps=4)
        pair = chares[4]
        sched.inject(chares[0].object_id, "start", {})
        sched.inject(chares[1].object_id, "start", {})
        sched.run()
        assert pair.round == 4

    def test_empty_patch_self_advances(self):
        sched = Scheduler(1, IDEAL)
        home = HomePatchChare(0, np.zeros(0, dtype=int), 0.001, 2)
        oid = sched.register(home, 0)
        home.expected_contributions = 0
        done = []
        sched.set_control_handler(lambda t, p: done.append(p))
        sched.inject(oid, "start", {})
        sched.run()
        assert len([p for p in done if p[0] == "step_done"]) == 2

    def test_pipelining_no_deadlock_with_skewed_loads(self):
        """One heavy compute must not deadlock neighbors a step apart."""
        sched, chares = wire_two_patch_scenario(n_steps=5, compute_load=0.0)
        chares[2].load = 0.5  # self_a is slow: patch B runs ahead
        sched.inject(chares[0].object_id, "start", {})
        sched.inject(chares[1].object_id, "start", {})
        sched.run()
        assert chares[0].round == 5 and chares[1].round == 5

    def test_step_completion_monotone_times(self):
        sched, chares = wire_two_patch_scenario(n_steps=4)
        times = []
        sched.set_control_handler(lambda t, p: times.append(t))
        sched.inject(chares[0].object_id, "start", {})
        sched.inject(chares[1].object_id, "start", {})
        sched.run()
        assert times == sorted(times)

    def test_proxy_forwards_combined_force_once_per_round(self):
        sched, chares = wire_two_patch_scenario(n_steps=2)
        proxy = chares[5]
        # count force messages through the LB database comm graph
        sched.inject(chares[0].object_id, "start", {})
        sched.inject(chares[1].object_id, "start", {})
        sched.run()
        snap = sched.lb_db.snapshot()
        edges = {(e.src, e.dst): e.messages for e in snap.edges}
        home_a = chares[0]
        key = (proxy.object_id, home_a.object_id)
        assert edges.get(key) == 2  # one combined force message per round

    def test_labels(self):
        sched, chares = wire_two_patch_scenario()
        assert "patch(0)" == chares[0].label()
        assert "proxy(0)" == chares[5].label()
        assert "nb(0+1)" in chares[4].label()
