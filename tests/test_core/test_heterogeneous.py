"""Measurement-based balancing on a heterogeneous machine.

The paper's central methodological claim (§2.1): "a runtime system can
employ a measurement-based approach: it can measure the object computation
and communication patterns over a period of time, and base its object
remapping decisions on these measurements.  We have shown that such
measurement-based load balancing leads to accurate load predictions."

The cleanest falsifiable consequence: on a machine with *stragglers*
(externally loaded or slower processors, ref [3]) the cost model is wrong —
it predicts identical per-object times everywhere — so only a balancer fed
with *measured* loads can route work away from slow processors.
"""

import numpy as np
import pytest

from repro.core.problem import DecomposedProblem
from repro.core.simulation import (
    DEFAULT_COST_MODEL,
    ParallelSimulation,
    SimulationConfig,
)
from repro.runtime.machine import MachineModel
from repro.runtime.scheduler import Scheduler


class TestSchedulerSpeedFactors:
    def test_validation(self):
        m = MachineModel("m", 1.0, 0, 0, 0, 0, 1e9)
        with pytest.raises(ValueError):
            Scheduler(2, m, proc_speed_factors=np.array([1.0]))
        with pytest.raises(ValueError):
            Scheduler(2, m, proc_speed_factors=np.array([1.0, 0.0]))

    def test_slow_processor_takes_longer(self):
        from repro.runtime.chare import Chare

        m = MachineModel("m", 1.0, 0, 0, 0, 0, 1e30, local_send_overhead_s=0)

        class Worker(Chare):
            def go(self):
                return 1.0

        sched = Scheduler(2, m, proc_speed_factors=np.array([1.0, 3.0]))
        a, b = Worker(), Worker()
        oa, ob = sched.register(a, 0), sched.register(b, 1)
        sched.inject(oa, "go", {})
        sched.inject(ob, "go", {})
        sched.run()
        busy = sched.trace.summary().busy_time_per_proc
        assert busy[1] == pytest.approx(3.0 * busy[0])


class TestStragglerBalancing:
    @pytest.fixture(scope="class")
    def problem(self, request):
        assembly = request.getfixturevalue("assembly")
        return DecomposedProblem.build(assembly, DEFAULT_COST_MODEL)

    def run(self, problem, use_measured: bool):
        # two of eight processors run at one third speed
        factors = np.ones(8)
        factors[1] = 3.0
        factors[5] = 3.0
        cfg = SimulationConfig(
            n_procs=8,
            use_measured_loads=use_measured,
            proc_speed_factors=factors,
            lb_schedule=("greedy+refine", "refine", "refine"),
        )
        return ParallelSimulation(problem.system, cfg, problem=problem).run()

    def test_measured_loads_beat_model_loads_with_stragglers(self, problem):
        measured = self.run(problem, use_measured=True)
        model = self.run(problem, use_measured=False)
        assert measured.time_per_step < model.time_per_step

    def test_measured_lb_still_improves_over_static(self, problem):
        measured = self.run(problem, use_measured=True)
        assert (
            measured.time_per_step
            < measured.phases[0].timings.time_per_step
        )
