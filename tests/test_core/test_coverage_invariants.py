"""Cross-cutting invariants of the decomposition (property-based).

The central correctness property of the paper's scheme: *every* atom pair
within the cutoff is covered by exactly one compute object (a self compute
of the shared patch or the pair compute of two neighboring patches), and by
the grainsize rule exactly one part of it.  If this held only approximately
the forces would be silently wrong.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.builder import small_water_box
from repro.core.decomposition import SpatialDecomposition
from repro.md.forcefield import default_forcefield
from repro.md.system import MolecularSystem
from repro.md.topology import Topology
from repro.util.pbc import minimum_image


def random_system(n_atoms: int, box_side: float, seed: int) -> MolecularSystem:
    rng = np.random.default_rng(seed)
    ff = default_forcefield()
    return MolecularSystem(
        positions=rng.random((n_atoms, 3)) * box_side,
        velocities=np.zeros((n_atoms, 3)),
        charges=np.zeros(n_atoms),
        type_indices=np.full(n_atoms, ff.atom_type_index("OT")),
        topology=Topology(),
        forcefield=ff,
        box=np.array([box_side] * 3),
    )


def in_cutoff_pairs(system, cutoff):
    pos = system.positions
    out = set()
    for i in range(system.n_atoms):
        d = minimum_image(pos[i + 1 :] - pos[i], system.box)
        r2 = np.einsum("ij,ij->i", d, d)
        for j in np.flatnonzero(r2 < cutoff * cutoff):
            out.add((i, i + 1 + int(j)))
    return out


def covered_pairs(decomposition):
    """Pairs covered by self + neighbor-pair compute objects (unordered)."""
    covered = set()
    d = decomposition
    for p in d.self_patches():
        atoms = d.patch_atoms[p]
        for x in range(len(atoms)):
            for y in range(x + 1, len(atoms)):
                covered.add((min(atoms[x], atoms[y]), max(atoms[x], atoms[y])))
    for pa, pb in d.neighbor_pairs():
        for a in d.patch_atoms[pa]:
            for b in d.patch_atoms[pb]:
                covered.add((min(a, b), max(a, b)))
    return covered


@given(st.integers(10, 60), st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_patch_pair_objects_cover_every_cutoff_pair(n_atoms, seed):
    cutoff = 5.0
    system = random_system(n_atoms, box_side=21.0, seed=seed)
    system.wrap()
    d = SpatialDecomposition(system, cutoff=cutoff)
    missing = in_cutoff_pairs(system, cutoff) - covered_pairs(d)
    assert not missing


def test_coverage_holds_on_structured_system(water100):
    cutoff = 6.0
    d = SpatialDecomposition(water100, cutoff=cutoff)
    missing = in_cutoff_pairs(water100, cutoff) - covered_pairs(d)
    assert not missing


@given(st.integers(2, 9), st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_grainsize_parts_partition_rows(n_parts, seed):
    """Striping rows part::n_parts is a partition: disjoint and total."""
    rng = np.random.default_rng(seed)
    atoms = rng.permutation(50)
    seen = []
    for part in range(n_parts):
        seen.extend(atoms[part::n_parts].tolist())
    assert sorted(seen) == sorted(atoms.tolist())
    assert len(seen) == len(set(seen))


def test_scheduler_is_deterministic(assembly):
    """Two identical runs produce bit-identical step completion times."""
    from repro.core.problem import DecomposedProblem
    from repro.core.simulation import (
        DEFAULT_COST_MODEL,
        ParallelSimulation,
        SimulationConfig,
    )

    problem = DecomposedProblem.build(assembly, DEFAULT_COST_MODEL)
    cfg = SimulationConfig(n_procs=5)
    t1 = ParallelSimulation(assembly, cfg, problem=problem).run()
    t2 = ParallelSimulation(assembly, cfg, problem=problem).run()
    assert t1.final.timings.completion_times == t2.final.timings.completion_times
    assert t1.time_per_step == t2.time_per_step
