"""NumericBackend unit tests: kernel slices match whole-system kernels."""

import numpy as np
import pytest

from repro.core.decomposition import SpatialDecomposition
from repro.core.numeric import NumericBackend
from repro.md.bonded import compute_bonded
from repro.md.nonbonded import NonbondedOptions, compute_nonbonded


@pytest.fixture()
def backend(assembly):
    return NumericBackend(assembly, NonbondedOptions(cutoff=12.0))


class TestNonbondedSlices:
    def test_all_patch_work_sums_to_full_nonbonded(self, assembly, backend):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        for p in d.self_patches():
            backend.nonbonded(0, d.patch_atoms[p], None, 0, 1)
        for pa, pb in d.neighbor_pairs():
            backend.nonbonded(0, d.patch_atoms[pa], d.patch_atoms[pb], 0, 1)
        ref = compute_nonbonded(assembly, NonbondedOptions(cutoff=12.0))
        e = backend.energies(0)
        assert e["lj"] == pytest.approx(ref.energy_lj, rel=1e-10)
        assert e["elec"] == pytest.approx(ref.energy_elec, rel=1e-10)
        np.testing.assert_allclose(backend.forces, ref.forces, atol=1e-8)

    def test_parts_partition_the_work(self, assembly, backend):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        pa, pb = d.neighbor_pairs()[0]
        whole = NumericBackend(assembly, NonbondedOptions(cutoff=12.0))
        whole.nonbonded(0, d.patch_atoms[pa], d.patch_atoms[pb], 0, 1)
        split = NumericBackend(assembly, NonbondedOptions(cutoff=12.0))
        for part in range(3):
            split.nonbonded(0, d.patch_atoms[pa], d.patch_atoms[pb], part, 3)
        np.testing.assert_allclose(split.forces, whole.forces, atol=1e-10)
        assert split.energies(0)["lj"] == pytest.approx(
            whole.energies(0)["lj"], rel=1e-12
        )

    def test_empty_rows_noop(self, assembly, backend):
        backend.nonbonded(0, np.zeros(0, dtype=int), None, 0, 1)
        assert backend.energies(0) == {}


class TestBondedSlices:
    def test_assigned_terms_sum_to_full_bonded(self, assembly, backend):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        a = d.assign_bonded_terms()
        for kind in ("bond", "angle", "dihedral", "improper"):
            for patch, terms in a.intra[kind].items():
                backend.bonded(0, {kind: terms})
            for patch, terms in a.inter[kind].items():
                backend.bonded(0, {kind: terms})
        ref_e, ref_f = compute_bonded(assembly)
        assert backend.energies(0)["bonded"] == pytest.approx(ref_e.total, rel=1e-10)
        np.testing.assert_allclose(backend.forces, ref_f, atol=1e-8)


class TestIntegration:
    def test_integrate_clears_forces(self, assembly, backend):
        atoms = np.arange(10)
        backend.forces[atoms] = 1.0
        backend.integrate(0, atoms, first_round=True)
        np.testing.assert_allclose(backend.forces[atoms], 0.0)

    def test_first_round_skips_completion_kick(self, assembly):
        be = NumericBackend(assembly, NonbondedOptions(cutoff=12.0), dt=1.0)
        atoms = np.arange(5)
        be.forces[atoms] = 10.0
        v_before = be.velocities[atoms].copy()
        be.integrate(0, atoms, first_round=True)
        # only one half kick applied
        from repro.md.constants import ACC_CONVERSION

        expected = v_before + 0.5 * ACC_CONVERSION * 10.0 / be.masses[atoms][:, None]
        # positions advanced by dt * v_new; velocities match single half kick
        np.testing.assert_allclose(be.velocities[atoms], expected)

    def test_backend_owns_a_copy(self, assembly):
        be = NumericBackend(assembly, NonbondedOptions(cutoff=12.0))
        be.positions[0] += 99.0
        assert not np.allclose(be.positions[0], assembly.positions[0])
