"""StepTimings and SimulationResult bookkeeping."""

import pickle

import numpy as np
import pytest

from repro.core.problem import DecomposedProblem
from repro.core.simulation import (
    DEFAULT_COST_MODEL,
    ParallelSimulation,
    SimulationConfig,
    StepTimings,
)


class TestStepTimings:
    def test_interior_mean(self):
        t = StepTimings([1.0, 2.0, 3.5, 5.0, 6.0], measure_last=2)
        # diffs: 1.0, 1.5, 1.5, 1.0 -> interior: 1.5, 1.5
        assert t.time_per_step == pytest.approx(1.5)

    def test_short_series_uses_all_diffs(self):
        t = StepTimings([1.0, 2.0], measure_last=4)
        assert t.time_per_step == pytest.approx(1.0)

    def test_single_completion(self):
        t = StepTimings([3.0], measure_last=1)
        assert t.time_per_step == pytest.approx(3.0)

    def test_empty(self):
        assert StepTimings([], measure_last=1).time_per_step == 0.0

    def test_step_times_diffs(self):
        t = StepTimings([0.0, 1.0, 3.0], measure_last=1)
        np.testing.assert_allclose(t.step_times, [1.0, 2.0])


class TestResultProperties:
    @pytest.fixture(scope="class")
    def result(self, request):
        assembly = request.getfixturevalue("assembly")
        problem = DecomposedProblem.build(assembly, DEFAULT_COST_MODEL)
        return ParallelSimulation(
            assembly, SimulationConfig(n_procs=4), problem=problem
        ).run()

    def test_final_is_last_phase(self, result):
        assert result.final is result.phases[-1]

    def test_speedup_definition(self, result):
        assert result.speedup == pytest.approx(
            result.sequential_reference_s / result.time_per_step
        )

    def test_gflops_definition(self, result):
        assert result.gflops == pytest.approx(
            result.flops_per_step / result.time_per_step / 1e9
        )


class TestProblemPickleRoundtrip:
    def test_cache_roundtrip_preserves_behaviour(self, assembly, tmp_path):
        """The benchmark disk cache must reproduce identical runs."""
        problem = DecomposedProblem.build(assembly, DEFAULT_COST_MODEL)
        blob = pickle.dumps(problem)
        problem2 = pickle.loads(blob)
        cfg = SimulationConfig(n_procs=4)
        r1 = ParallelSimulation(assembly, cfg, problem=problem).run()
        r2 = ParallelSimulation(problem2.system, cfg, problem=problem2).run()
        assert r1.time_per_step == pytest.approx(r2.time_per_step, rel=1e-12)
        assert r1.counts == r2.counts
