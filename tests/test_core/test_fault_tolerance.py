"""End-to-end fault tolerance: kill a processor, recover, same physics.

The headline invariant: a run with an injected mid-run processor failure
recovers from the in-memory double checkpoint and produces final per-atom
positions, velocities, and energies identical (within 1e-12) to the
fault-free run.
"""

import numpy as np
import pytest

from repro.core import ParallelSimulation, SimulationConfig
from repro.runtime.checkpoint import UnrecoverableFailure
from repro.runtime.faults import FaultPlan

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


# --------------------------------------------------------------------- #
# timing mode: survival, accounting, degraded placement
# --------------------------------------------------------------------- #
class TestTimingModeRecovery:
    @pytest.fixture(scope="class")
    def clean(self, request):
        system = request.getfixturevalue("assembly")
        cfg = SimulationConfig(n_procs=4, lb_schedule=("greedy+refine",))
        return ParallelSimulation(system, cfg).run()

    def test_checkpoint_only_run_matches_structure(self, assembly, clean):
        """With checkpointing but no faults, results are complete and the
        overhead is pure checkpoint time."""
        cfg = SimulationConfig(
            n_procs=4, lb_schedule=("greedy+refine",), checkpoint_interval=2
        )
        res = ParallelSimulation(assembly, cfg).run()
        rec = res.recovery
        assert res.dead_procs == ()
        assert rec.n_failures == 0
        assert rec.checkpoints_taken > 0
        assert rec.checkpoint_time_s > 0
        # completion count identical to the plain run
        assert len(res.final.timings.completion_times) == len(
            clean.final.timings.completion_times
        )

    def test_mid_run_kill_completes_with_accounting(self, assembly, clean):
        t_kill = clean.time_per_step * 2.5
        plan = FaultPlan.parse(f"seed=7,kill=2@{t_kill}")
        cfg = SimulationConfig(
            n_procs=4,
            lb_schedule=("greedy+refine",),
            fault_plan=plan,
            checkpoint_interval=2,
        )
        res = ParallelSimulation(assembly, cfg).run()
        rec = res.recovery
        assert res.dead_procs == (2,)
        assert rec.n_failures == 1
        assert rec.events[0].procs == (2,)
        assert rec.detection_latency_s == pytest.approx(
            cfg.failure_detection_timeout
        )
        assert rec.recovery_time_s > 0
        # every step still completed, in order
        times = res.final.timings.completion_times
        assert len(times) == cfg.steps_per_phase
        assert all(b > a for a, b in zip(times, times[1:]))
        # nothing remains placed on the dead processor
        for phase in res.phases:
            if 2 in phase.dead_procs:
                assert all(p != 2 for p in phase.placement.values())

    def test_unrecoverable_double_failure_raises(self, assembly):
        # both kills land inside the first checkpoint interval: with 4
        # procs, buddies are adjacent, so killing a chare's owner AND its
        # buddy before the next cut loses both copies
        plan = FaultPlan.parse("seed=1,kill=0@0.02,kill=1@0.02")
        cfg = SimulationConfig(
            n_procs=4,
            lb_schedule=(),
            fault_plan=plan,
            checkpoint_interval=100,
        )
        with pytest.raises(UnrecoverableFailure):
            ParallelSimulation(assembly, cfg).run()


# --------------------------------------------------------------------- #
# numeric mode: the recovery-equivalence invariant
# --------------------------------------------------------------------- #
class TestNumericInvariant:
    BASE = dict(
        n_procs=4,
        numeric=True,
        dt=1.0,
        cutoff=6.0,
        lb_schedule=(),
        steps_per_phase=6,
        measure_last=1,
    )

    @pytest.fixture(scope="class")
    def reference(self, request):
        system = request.getfixturevalue("water100")
        system.assign_velocities(300.0, seed=9)
        ref = ParallelSimulation(
            system, SimulationConfig(**self.BASE)
        ).run_phase_only()
        return system, ref

    def test_recovered_run_matches_fault_free(self, reference):
        system, ref = reference
        t_kill = float(ref.timings.completion_times[2]) * 0.9
        plan = FaultPlan.parse(f"seed=5,kill=1@{t_kill!r}")
        cfg = SimulationConfig(
            **self.BASE, fault_plan=plan, checkpoint_interval=2
        )
        faulted = ParallelSimulation(system, cfg).run_phase_only()

        assert faulted.recovery.n_failures == 1
        assert faulted.recovery.steps_replayed > 0
        b0, b1 = ref.backend, faulted.backend
        assert np.allclose(b1.positions, b0.positions, rtol=1e-12, atol=1e-12)
        assert np.allclose(b1.velocities, b0.velocities, rtol=1e-12, atol=1e-12)
        assert np.allclose(b1.forces, b0.forces, rtol=1e-12, atol=1e-12)
        for step, energies in b0.energy_by_step.items():
            for key, val in energies.items():
                assert b1.energy_by_step[step][key] == pytest.approx(
                    val, rel=1e-12, abs=1e-12
                )

    def test_checkpoint_interval_one_also_matches(self, reference):
        system, ref = reference
        t_kill = float(ref.timings.completion_times[4]) * 0.99
        plan = FaultPlan.parse(f"seed=8,kill=3@{t_kill!r}")
        cfg = SimulationConfig(
            **self.BASE, fault_plan=plan, checkpoint_interval=1
        )
        faulted = ParallelSimulation(system, cfg).run_phase_only()
        assert faulted.recovery.n_failures == 1
        # at interval 1 at most one completed round is ever replayed
        assert faulted.recovery.steps_replayed <= 1
        assert np.allclose(
            faulted.backend.positions, ref.backend.positions,
            rtol=1e-12, atol=1e-12,
        )


# --------------------------------------------------------------------- #
# message faults: graceful degradation + determinism
# --------------------------------------------------------------------- #
class TestMessageFaults:
    def test_lossy_network_still_completes(self, assembly):
        plan = FaultPlan.parse("seed=3,drop=0.02,delay=0.05@1e-4,dup=0.02")
        cfg = SimulationConfig(
            n_procs=4, lb_schedule=("greedy+refine",), fault_plan=plan
        )
        res = ParallelSimulation(assembly, cfg).run()
        rec = res.recovery
        assert res.dead_procs == ()
        assert rec.messages_dropped > 0
        assert rec.messages_delayed > 0
        assert rec.messages_duplicated > 0
        assert len(res.final.timings.completion_times) == cfg.steps_per_phase

    def test_same_seed_same_run(self, assembly):
        plan = FaultPlan.parse("seed=3,drop=0.05,dup=0.05")
        cfg = SimulationConfig(n_procs=4, lb_schedule=(), fault_plan=plan)
        a = ParallelSimulation(assembly, cfg).run()
        b = ParallelSimulation(assembly, cfg).run()
        assert (
            a.final.timings.completion_times == b.final.timings.completion_times
        )
        assert a.recovery.messages_dropped == b.recovery.messages_dropped


# --------------------------------------------------------------------- #
# surfacing: audit block and CLI flags
# --------------------------------------------------------------------- #
class TestSurfacing:
    def test_audit_includes_recovery_block(self, assembly):
        from repro.analysis.audit import performance_audit

        plan = FaultPlan.parse("seed=7,kill=2@0.3")
        cfg = SimulationConfig(
            n_procs=4,
            lb_schedule=(),
            fault_plan=plan,
            checkpoint_interval=2,
        )
        res = ParallelSimulation(assembly, cfg).run()
        text = performance_audit(res).format()
        assert "Recovery overhead" in text
        assert "processor failures" in text
        assert "steps replayed" in text

    def test_audit_omits_block_without_resilience(self, assembly):
        from repro.analysis.audit import performance_audit

        cfg = SimulationConfig(n_procs=4, lb_schedule=())
        res = ParallelSimulation(assembly, cfg).run()
        assert "Recovery overhead" not in performance_audit(res).format()

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["audit", "--fault-plan", "seed=7,kill=1@0.5",
             "--checkpoint-interval", "2"]
        )
        assert args.fault_plan == "seed=7,kill=1@0.5"
        assert args.checkpoint_interval == 2
        plan = FaultPlan.parse(args.fault_plan)
        assert plan.failures[0].proc == 1

    def test_cli_audit_with_faults(self, capsys):
        from repro.cli import main

        rc = main(
            ["audit", "--system", "mini", "--procs", "4",
             "--fault-plan", "seed=7,kill=2@0.5", "--checkpoint-interval", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Recovery overhead" in out
        assert "procs [2]" in out
