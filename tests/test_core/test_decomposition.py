"""Spatial decomposition: patch grids, neighbor pairs, bonded ownership."""

import numpy as np
import pytest

from repro.core.decomposition import PATCH_SIZE_FACTOR, SpatialDecomposition


class TestPatchGrid:
    def test_apoa1_box_gives_245_patches(self, water64):
        """The paper's ApoA-I grid: 108.86x108.86x77.76 at 12 A -> 7x7x5."""
        s = water64.copy()
        s.box = np.array([108.86, 108.86, 77.76])
        d = SpatialDecomposition(s, cutoff=12.0)
        assert tuple(d.dims) == (7, 7, 5)
        assert d.n_patches == 245

    def test_patch_edges_at_least_cutoff(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        assert np.all(d.patch_edge >= d.cutoff - 1e-9)

    def test_every_atom_in_exactly_one_patch(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        counted = np.concatenate(d.patch_atoms)
        assert len(counted) == assembly.n_atoms
        assert len(np.unique(counted)) == assembly.n_atoms

    def test_atoms_inside_their_patch_bounds(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        for p in range(d.n_patches):
            atoms = d.patch_atoms[p]
            if len(atoms) == 0:
                continue
            coords = np.array(d.coords(p))
            lo = coords * d.patch_edge
            hi = (coords + 1) * d.patch_edge
            pos = assembly.positions[atoms]
            assert np.all(pos >= lo - 1e-9) and np.all(pos <= hi + 1e-9)

    def test_explicit_dims_override(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0, dims=(1, 1, 2))
        assert d.n_patches == 2

    def test_rejects_dims_smaller_than_cutoff(self, assembly):
        with pytest.raises(ValueError):
            SpatialDecomposition(assembly, cutoff=12.0, dims=(5, 5, 5))

    def test_flat_coords_roundtrip(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        for p in range(d.n_patches):
            assert d.flat(*d.coords(p)) == p


class TestNeighbors:
    def test_pair_count_matches_paper_formula(self, water64):
        """With periodic wrapping and dims >= 3 per axis: 13 pairs/patch."""
        s = water64.copy()
        s.box = np.array([108.86, 108.86, 77.76])
        d = SpatialDecomposition(s, cutoff=12.0)
        # paper: 14 objects per cube = 1 self + 26/2 pair objects, i.e.
        # 3430 total for ApoA-I; pair objects alone = 245*13 = 3185
        assert len(d.neighbor_pairs()) == 245 * 13
        assert len(d.neighbor_pairs()) + d.n_patches == 3430

    def test_pairs_unique_and_ordered(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        pairs = d.neighbor_pairs()
        assert len(set(pairs)) == len(pairs)
        assert all(a < b for a, b in pairs)

    def test_small_grid_dedupes_wrapped_neighbors(self, assembly):
        """2x2x2 grid: wrapping aliases many offsets."""
        d = SpatialDecomposition(assembly, cutoff=12.0)
        assert tuple(d.dims) == (2, 2, 2)
        pairs = d.neighbor_pairs()
        # all C(8,2)=28 pairs are neighbors on a 2-cube with PBC
        assert len(pairs) == 28

    def test_upstream_neighbors_at_most_seven(self, water64):
        s = water64.copy()
        s.box = np.array([108.86, 108.86, 77.76])
        d = SpatialDecomposition(s, cutoff=12.0)
        for p in range(0, d.n_patches, 17):
            ups = d.upstream_neighbors(p)
            assert 1 <= len(ups) <= 7
            assert p not in ups


class TestBondedOwnership:
    def test_every_term_assigned_exactly_once(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        a = d.assign_bonded_terms()
        topo = assembly.topology
        for kind, total in (
            ("bond", topo.n_bonds),
            ("angle", topo.n_angles),
            ("dihedral", topo.n_dihedrals),
            ("improper", topo.n_impropers),
        ):
            assigned = sum(len(v) for v in a.intra[kind].values()) + sum(
                len(v) for v in a.inter[kind].values()
            )
            assert assigned == total, kind
            seen = np.concatenate(
                [v for v in a.intra[kind].values()]
                + [v for v in a.inter[kind].values()]
                + [np.zeros(0, dtype=np.int64)]
            )
            assert len(np.unique(seen)) == total

    def test_intra_terms_have_all_atoms_in_owner(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        a = d.assign_bonded_terms()
        idx, _, _ = assembly.topology.bond_arrays()
        for patch, terms in a.intra["bond"].items():
            atoms = idx[terms]
            assert np.all(d.patch_of_atom[atoms] == patch)

    def test_most_terms_are_intra(self, assembly):
        """Paper §4.2.2: 'most are contained completely within a single cube'."""
        d = SpatialDecomposition(assembly, cutoff=12.0)
        a = d.assign_bonded_terms()
        intra = sum(len(v) for v in a.intra["bond"].values())
        inter = sum(len(v) for v in a.inter["bond"].values())
        assert intra > inter

    def test_owner_patch_wrap_aware(self, water64):
        """A term across the periodic boundary is owned by the high-coord
        patch (the wrap-aware minimum)."""
        s = water64.copy()
        s.box = np.array([108.86, 108.86, 77.76])
        d = SpatialDecomposition(s, cutoff=12.0)
        # fabricate patch coords: atom A in x-patch 6 (last), B in x-patch 0
        pos = s.positions
        pos[0] = [108.0, 5.0, 5.0]  # patch x = 6
        pos[1] = [0.5, 5.0, 5.0]  # patch x = 0
        d2 = SpatialDecomposition(s, cutoff=12.0)
        owner = d2.owner_patch(np.array([0, 1]))
        assert d2.coords(owner)[0] == 6

    def test_counts_helper(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        a = d.assign_bonded_terms()
        c = a.counts(0, "intra")
        assert set(c) == {"bond", "angle", "dihedral", "improper"}
        assert all(v >= 0 for v in c.values())


class TestPairRowCounts:
    def test_self_counts_sum_to_pair_count(self, assembly):
        from repro.md.nonbonded import count_interacting_pairs

        d = SpatialDecomposition(assembly, cutoff=12.0)
        p = int(np.argmax([len(a) for a in d.patch_atoms]))
        rows = d.pair_row_counts(p, None)
        expected = count_interacting_pairs(
            assembly.positions[d.patch_atoms[p]], None, assembly.box, 12.0
        )
        assert rows.sum() == expected

    def test_cross_counts_sum_to_pair_count(self, assembly):
        from repro.md.nonbonded import count_interacting_pairs

        d = SpatialDecomposition(assembly, cutoff=12.0)
        pa, pb = d.neighbor_pairs()[0]
        rows = d.pair_row_counts(pa, pb)
        expected = count_interacting_pairs(
            assembly.positions[d.patch_atoms[pa]],
            assembly.positions[d.patch_atoms[pb]],
            assembly.box,
            12.0,
        )
        assert rows.sum() == expected
        assert len(rows) == len(d.patch_atoms[pa])

    def test_empty_patch(self, water64):
        s = water64.copy()
        s.box = np.array([108.86, 108.86, 77.76])  # water cluster in a corner
        d = SpatialDecomposition(s, cutoff=12.0)
        empties = [p for p in range(d.n_patches) if len(d.patch_atoms[p]) == 0]
        assert empties, "expected empty patches in oversized box"
        assert d.pair_row_counts(empties[0], None).shape == (0,)
