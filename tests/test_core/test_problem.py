"""DecomposedProblem: the shared prebuilt bundle."""

import pytest

from repro.core.computes import GrainsizeConfig
from repro.core.problem import DecomposedProblem
from repro.core.simulation import (
    DEFAULT_COST_MODEL,
    ParallelSimulation,
    SimulationConfig,
)


@pytest.fixture(scope="module")
def problem(request):
    assembly = request.getfixturevalue("assembly")
    return DecomposedProblem.build(assembly, DEFAULT_COST_MODEL)


class TestBuild:
    def test_counts_consistent_with_descriptors(self, problem):
        assert problem.counts.nonbonded_pairs == sum(
            d.n_pairs for d in problem.nb_descriptors
        )
        assert problem.counts.atoms == problem.system.n_atoms

    def test_descriptor_indices_unique_and_dense(self, problem):
        idx = [d.index for d in problem.descriptors]
        assert idx == list(range(len(idx)))

    def test_respects_grainsize_config(self, request):
        assembly = request.getfixturevalue("assembly")
        coarse = DecomposedProblem.build(
            assembly,
            DEFAULT_COST_MODEL,
            grainsize=GrainsizeConfig(split_self=False, split_pairs=False),
        )
        fine = DecomposedProblem.build(
            assembly, DEFAULT_COST_MODEL, grainsize=GrainsizeConfig(target_load_s=0.001)
        )
        assert len(fine.descriptors) > len(coarse.descriptors)

    def test_split_bonded_flag(self, request):
        assembly = request.getfixturevalue("assembly")
        merged = DecomposedProblem.build(
            assembly, DEFAULT_COST_MODEL, split_bonded=False
        )
        assert all(not d.migratable for d in merged.bonded_descriptors)


class TestSharedAcrossRuns:
    def test_same_problem_different_proc_counts(self, problem):
        r4 = ParallelSimulation(
            problem.system, SimulationConfig(n_procs=4), problem=problem
        ).run()
        r8 = ParallelSimulation(
            problem.system, SimulationConfig(n_procs=8), problem=problem
        ).run()
        assert r8.time_per_step < r4.time_per_step
        # shared problem: identical work counts
        assert r4.counts == r8.counts

    def test_problem_reuse_does_not_mutate(self, problem):
        loads_before = [d.load for d in problem.descriptors]
        ParallelSimulation(
            problem.system, SimulationConfig(n_procs=6), problem=problem
        ).run()
        assert [d.load for d in problem.descriptors] == loads_before


class TestNewStrategiesEndToEnd:
    @pytest.mark.parametrize("schedule", [("diffusion",), ("phase_aware", "refine")])
    def test_extension_strategies_run_and_help(self, problem, schedule):
        static = ParallelSimulation(
            problem.system, SimulationConfig(n_procs=8, lb_schedule=()),
            problem=problem,
        ).run()
        balanced = ParallelSimulation(
            problem.system, SimulationConfig(n_procs=8, lb_schedule=schedule),
            problem=problem,
        ).run()
        assert balanced.time_per_step < static.time_per_step
