"""Isoefficiency: the formal version of §3's scalability ordering."""

import pytest

from repro.baselines.isoefficiency import efficiency, isoefficiency_atoms
from repro.baselines.schemes import (
    AtomDecompositionModel,
    AtomReplicationModel,
    ForceDecompositionModel,
    SpatialDecompositionModel,
)
from repro.runtime.machine import ASCI_RED


class TestEfficiency:
    def test_perfect_at_one_processor(self):
        for scheme in (AtomReplicationModel, SpatialDecompositionModel):
            assert efficiency(scheme, 50_000, 1, ASCI_RED) == pytest.approx(1.0)

    def test_monotone_in_problem_size(self):
        for scheme in (ForceDecompositionModel, SpatialDecompositionModel):
            e_small = efficiency(scheme, 10_000, 256, ASCI_RED)
            e_big = efficiency(scheme, 500_000, 256, ASCI_RED)
            assert e_big >= e_small, scheme.__name__


class TestIsoefficiency:
    def test_spatial_needs_least_atoms(self):
        """At fixed P and target efficiency, spatial decomposition's
        required problem size is the smallest."""
        p = 512
        sizes = {
            s.__name__: isoefficiency_atoms(s, p, ASCI_RED, 0.7)
            for s in (
                AtomDecompositionModel,
                ForceDecompositionModel,
                SpatialDecompositionModel,
            )
        }
        assert sizes["SpatialDecompositionModel"] is not None
        for name, n in sizes.items():
            if name != "SpatialDecompositionModel" and n is not None:
                assert sizes["SpatialDecompositionModel"] <= n, name

    def test_replication_cannot_reach_target_at_scale(self):
        """Atom replication's comm is Θ(N): no problem size reaches 70%
        efficiency at 1024 processors — the paper's 'theoretically
        non-scalable'."""
        assert (
            isoefficiency_atoms(AtomReplicationModel, 1024, ASCI_RED, 0.7) is None
        )

    def test_spatial_growth_roughly_linear(self):
        """Doubling P should require roughly-linear growth in N for the
        spatial scheme (bounded isoefficiency)."""
        n_256 = isoefficiency_atoms(SpatialDecompositionModel, 256, ASCI_RED, 0.8)
        n_1024 = isoefficiency_atoms(SpatialDecompositionModel, 1024, ASCI_RED, 0.8)
        assert n_256 is not None and n_1024 is not None
        growth = n_1024 / n_256
        assert growth < 4.0 * 3.0  # at most ~linear-in-P growth with slack

    def test_force_growth_superlinear_vs_spatial(self):
        n_f_256 = isoefficiency_atoms(ForceDecompositionModel, 256, ASCI_RED, 0.8)
        n_f_2048 = isoefficiency_atoms(ForceDecompositionModel, 2048, ASCI_RED, 0.8)
        n_s_256 = isoefficiency_atoms(SpatialDecompositionModel, 256, ASCI_RED, 0.8)
        n_s_2048 = isoefficiency_atoms(SpatialDecompositionModel, 2048, ASCI_RED, 0.8)
        assert None not in (n_f_256, n_f_2048, n_s_256, n_s_2048)
        assert (n_f_2048 / n_f_256) > (n_s_2048 / n_s_256)
