"""Baseline decomposition models: the §3 scalability ordering."""

import numpy as np
import pytest

from repro.baselines.schemes import (
    AtomDecompositionModel,
    AtomReplicationModel,
    ForceDecompositionModel,
    SpatialDecompositionModel,
)
from repro.runtime.machine import ASCI_RED

N = 92_224
W = 57.04
VOL = 108.86 * 108.86 * 77.76


def models():
    common = dict(n_atoms=N, sequential_work_s=W, machine=ASCI_RED)
    return {
        "replication": AtomReplicationModel(**common),
        "atom": AtomDecompositionModel(**common),
        "force": ForceDecompositionModel(**common),
        "spatial": SpatialDecompositionModel(**common, box_volume_A3=VOL),
    }


class TestScalabilityOrdering:
    def test_single_processor_equal(self):
        for m in models().values():
            assert m.step_time(1) == pytest.approx(W)

    def test_comm_ratio_trends(self):
        """§3: replication/atom ratios grow with P; spatial stays bounded."""
        m = models()
        for name in ("replication", "atom", "force"):
            assert m[name].comm_ratio(1024) > m[name].comm_ratio(64), name
        spatial_small = m["spatial"].comm_ratio(64)
        spatial_large = m["spatial"].comm_ratio(1024)
        # bounded: does not blow up the way the others do
        assert spatial_large < 10 * max(spatial_small, 0.05)

    def test_spatial_beats_others_at_scale(self):
        m = models()
        at_2048 = {name: mod.step_time(2048) for name, mod in m.items()}
        assert at_2048["spatial"] < at_2048["force"]
        assert at_2048["force"] < at_2048["atom"]

    def test_force_decomposition_competitive_at_medium_scale(self):
        """§3: force decomposition 'may lead to reasonable speedups on
        medium-size computers (up to 128 processors)'."""
        m = models()
        s = m["force"].speedup(128)
        assert s > 50  # reasonable
        assert m["force"].speedup(2048) < m["spatial"].speedup(2048)

    def test_speedup_saturates_for_replication(self):
        m = models()["replication"]
        assert m.speedup(2048) < m.speedup(512) * 2.0

    def test_spatial_scales_far(self):
        m = models()["spatial"]
        assert m.speedup(1024) > 400

    def test_comm_time_positive(self):
        for name, m in models().items():
            assert m.comm_time(16) > 0, name


class TestSpatialModelDetails:
    def test_shell_clipped_to_box(self):
        m = SpatialDecompositionModel(
            n_atoms=N, sequential_work_s=W, machine=ASCI_RED, box_volume_A3=VOL
        )
        # at P=2 the import shell formula would exceed the box; must clip
        assert m.comm_time(2) > 0
        region = VOL / 2
        side = region ** (1 / 3)
        assert (side + 24) ** 3 - side**3 > VOL - region  # i.e. clipping active

    def test_explicit_density_override(self):
        m = SpatialDecompositionModel(
            n_atoms=N, sequential_work_s=W, machine=ASCI_RED,
            box_volume_A3=VOL, density_atoms_per_A3=0.05,
        )
        m2 = SpatialDecompositionModel(
            n_atoms=N, sequential_work_s=W, machine=ASCI_RED, box_volume_A3=VOL
        )
        assert m.comm_time(64) < m2.comm_time(64)
