"""The refinement strategy: move few objects, only off overloaded procs."""

import numpy as np
import pytest

from repro.balancer.problem import ComputeItem, LBProblem, placement_stats
from repro.balancer.refine import refine_strategy


def skewed_problem():
    """Everything starts on processor 0 of 4."""
    items = [ComputeItem(i, 1.0, (i % 3,), proc=0) for i in range(8)]
    return LBProblem(
        n_procs=4,
        computes=items,
        background=np.zeros(4),
        patch_home={0: 0, 1: 1, 2: 2},
    )


class TestRefine:
    def test_reduces_imbalance(self):
        p = skewed_problem()
        before = placement_stats(p, {i.index: i.proc for i in p.computes})
        after = placement_stats(p, refine_strategy(p))
        assert after["max_load"] < before["max_load"]

    def test_returns_full_placement(self):
        p = skewed_problem()
        placement = refine_strategy(p)
        assert set(placement) == {i.index for i in p.computes}

    def test_balanced_input_untouched(self):
        """With nothing overloaded, refinement moves nothing."""
        items = [ComputeItem(i, 1.0, (0,), proc=i % 4) for i in range(8)]
        p = LBProblem(n_procs=4, computes=items, background=np.zeros(4),
                      patch_home={0: 0})
        placement = refine_strategy(p)
        assert placement == {i.index: i.proc for i in items}

    def test_moves_fewer_objects_than_greedy_rebuild(self):
        """Refinement is incremental: most objects stay put."""
        rng = np.random.default_rng(2)
        items = [
            ComputeItem(i, float(rng.exponential(1.0)), (int(rng.integers(6)),),
                        proc=int(rng.integers(4)))
            for i in range(40)
        ]
        # make proc 0 overloaded
        for i in range(5):
            items[i].proc = 0
            items[i].load = 3.0
        p = LBProblem(n_procs=4, computes=items, background=np.zeros(4),
                      patch_home={i: i % 4 for i in range(6)})
        placement = refine_strategy(p)
        moved = sum(1 for it in items if placement[it.index] != it.proc)
        assert 0 < moved < len(items) // 2

    def test_only_underloaded_destinations(self):
        p = skewed_problem()
        placement = refine_strategy(p)
        loads = np.zeros(4)
        for it in p.computes:
            loads[placement[it.index]] += it.load
        # nothing should have been moved onto the (initially) overloaded proc
        moved_to_0 = [it for it in p.computes if it.proc != 0 and placement[it.index] == 0]
        assert moved_to_0 == []

    def test_existing_proxy_destination_wins(self):
        """Regression: a destination already holding a proxy of the object's
        patch must beat a less-loaded destination without one — the move is
        communication-free there (paper §3.2: refinement tolerates new
        proxies but reuses existing ones first)."""
        items = [ComputeItem(i, 0.5, (0,), proc=0) for i in range(6)]
        p = LBProblem(
            n_procs=3,
            computes=items,
            # proc 1 is busier than proc 2, so load alone would pick proc 2
            background=np.array([0.0, 0.2, 0.0]),
            patch_home={0: 0},
            existing_proxies={(0, 1)},
        )
        placement = refine_strategy(p)
        moved = [it.index for it in items if placement[it.index] != 0]
        assert moved, "overloaded proc 0 must shed objects"
        # the first (largest-first order) migrant reuses proc 1's proxy
        assert placement[moved[0]] == 1

    def test_home_processor_breaks_proxy_ties(self):
        """Between two destinations that both hold the patch (one as home,
        one as proxy), the home processor wins the tie."""
        items = [ComputeItem(i, 0.5, (1,), proc=0) for i in range(6)]
        p = LBProblem(
            n_procs=3,
            computes=items,
            background=np.zeros(3),
            patch_home={1: 2},
            existing_proxies={(1, 1)},
        )
        placement = refine_strategy(p)
        moved = [it.index for it in items if placement[it.index] != 0]
        assert moved
        assert placement[moved[0]] == 2
