"""Baseline strategies and the registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balancer.problem import ComputeItem, LBProblem, placement_stats
from repro.balancer.strategies import (
    STRATEGIES,
    greedy_load_only_strategy,
    keep_strategy,
    random_strategy,
    round_robin_strategy,
)


def problem(n=12, procs=4, seed=0):
    rng = np.random.default_rng(seed)
    items = [
        ComputeItem(i, float(rng.exponential(1.0)), (int(rng.integers(6)),),
                    proc=int(rng.integers(procs)))
        for i in range(n)
    ]
    return LBProblem(n_procs=procs, computes=items, background=np.zeros(procs),
                     patch_home={i: i % procs for i in range(6)})


class TestRegistry:
    def test_contains_paper_strategies(self):
        for name in ("greedy", "refine", "keep", "random", "round_robin",
                     "greedy_load_only"):
            assert name in STRATEGIES


class TestBaselines:
    def test_keep_identity(self):
        p = problem()
        assert keep_strategy(p) == {i.index: i.proc for i in p.computes}

    def test_random_deterministic_per_seed(self):
        p = problem()
        assert random_strategy(p, seed=3) == random_strategy(p, seed=3)

    def test_random_in_range(self):
        p = problem()
        assert all(0 <= v < p.n_procs for v in random_strategy(p).values())

    def test_round_robin_even_counts(self):
        p = problem(n=12, procs=4)
        counts = np.bincount(list(round_robin_strategy(p).values()), minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_greedy_load_only_balances_load(self):
        p = problem(n=40, procs=4, seed=5)
        stats = placement_stats(p, greedy_load_only_strategy(p))
        assert stats["imbalance_ratio"] < 1.25

    def test_load_only_ignores_locality(self):
        """LPT balances load but scatters patches across processors."""
        items = [ComputeItem(i, 1.0, (7,), proc=0) for i in range(8)]
        p = LBProblem(n_procs=8, computes=items, background=np.zeros(8),
                      patch_home={7: 0})
        stats = placement_stats(p, greedy_load_only_strategy(p))
        assert stats["n_proxies"] == 7  # a proxy on every other processor

    @given(st.integers(1, 30), st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_all_strategies_produce_total_valid_placements(self, n, procs):
        p = problem(n=n, procs=procs, seed=n * 31 + procs)
        for name, strategy in STRATEGIES.items():
            placement = strategy(p)
            assert set(placement) == {i.index for i in p.computes}, name
            assert all(0 <= v < procs for v in placement.values()), name


class TestProblemValidation:
    def test_background_shape_checked(self):
        with pytest.raises(ValueError):
            LBProblem(n_procs=4, computes=[], background=np.zeros(3), patch_home={})

    def test_average_load(self):
        p = LBProblem(
            n_procs=2,
            computes=[ComputeItem(0, 3.0, (0,), 0)],
            background=np.array([1.0, 0.0]),
            patch_home={0: 0},
        )
        assert p.average_load() == pytest.approx(2.0)

    def test_patch_available(self):
        p = LBProblem(
            n_procs=2,
            computes=[],
            background=np.zeros(2),
            patch_home={0: 1},
            existing_proxies={(0, 0)},
        )
        assert p.patch_available(0, 1)  # home
        assert p.patch_available(0, 0)  # proxy
        assert not p.patch_available(1, 0)
