"""Distributed neighbor-diffusion strategy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balancer.diffusion import diffusion_strategy
from repro.balancer.problem import ComputeItem, LBProblem, placement_stats


def hotspot_problem(n_procs=8, n_objects=40, seed=0):
    """All objects piled on processor 0."""
    rng = np.random.default_rng(seed)
    items = [
        ComputeItem(i, float(rng.exponential(0.1) + 0.01), (i % 4,), proc=0)
        for i in range(n_objects)
    ]
    return LBProblem(
        n_procs=n_procs,
        computes=items,
        background=np.zeros(n_procs),
        patch_home={i: i % n_procs for i in range(4)},
    )


class TestDiffusion:
    def test_validation(self):
        p = hotspot_problem()
        with pytest.raises(ValueError):
            diffusion_strategy(p, sweeps=0)
        with pytest.raises(ValueError):
            diffusion_strategy(p, radius=0)

    def test_reduces_hotspot(self):
        p = hotspot_problem()
        before = placement_stats(p, {i.index: 0 for i in p.computes})
        placement = diffusion_strategy(p, sweeps=20)
        after = placement_stats(p, placement)
        assert after["max_load"] < 0.5 * before["max_load"]

    def test_load_flows_beyond_radius_over_sweeps(self):
        """With radius 1, several sweeps spread a hotspot across the ring."""
        p = hotspot_problem(n_procs=8)
        placement = diffusion_strategy(p, sweeps=30, radius=1)
        used = set(placement.values())
        assert len(used) >= 5

    def test_single_processor_noop(self):
        items = [ComputeItem(0, 1.0, (0,), 0)]
        p = LBProblem(n_procs=1, computes=items, background=np.zeros(1),
                      patch_home={0: 0})
        assert diffusion_strategy(p) == {0: 0}

    def test_balanced_input_stable(self):
        items = [ComputeItem(i, 1.0, (0,), proc=i % 4) for i in range(16)]
        p = LBProblem(n_procs=4, computes=items, background=np.zeros(4),
                      patch_home={0: 0})
        placement = diffusion_strategy(p)
        assert placement == {i.index: i.index % 4 for i in items}

    def test_respects_background_load(self):
        items = [ComputeItem(i, 0.5, (0,), proc=0) for i in range(8)]
        bg = np.array([0.0, 4.0, 0.0, 0.0])
        p = LBProblem(n_procs=4, computes=items, background=bg, patch_home={0: 0})
        placement = diffusion_strategy(p, sweeps=30)
        loads = bg.copy()
        for it in items:
            loads[placement[it.index]] += it.load
        assert loads[1] <= loads.max()  # the busy proc did not become the peak

    def test_worse_than_centralized_greedy_but_close(self):
        """The paper's trade: centralized sees everything; diffusion is
        local.  Diffusion should approach but generally not beat greedy."""
        from repro.balancer.greedy import greedy_strategy

        p1 = hotspot_problem(n_procs=16, n_objects=100, seed=3)
        p2 = hotspot_problem(n_procs=16, n_objects=100, seed=3)
        d = placement_stats(p1, diffusion_strategy(p1, sweeps=30))
        g = placement_stats(p2, greedy_strategy(p2))
        assert d["max_load"] < 2.0 * g["max_load"]

    @given(st.integers(2, 16), st.integers(1, 3), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_total_valid_placement(self, n_procs, radius, seed):
        p = hotspot_problem(n_procs=n_procs, n_objects=20, seed=seed)
        placement = diffusion_strategy(p, sweeps=5, radius=radius)
        assert set(placement) == {i.index for i in p.computes}
        assert all(0 <= v < n_procs for v in placement.values())
