"""Phase-aware strategy (the paper's §5 future-work item)."""

import numpy as np
import pytest

from repro.balancer.phase_aware import phase_aware_strategy
from repro.balancer.problem import ComputeItem, LBProblem, placement_stats


def mixed_phase_problem(n_procs=4, seed=0):
    """Half the objects are single-patch (early phase), half are pair
    objects (late phase)."""
    rng = np.random.default_rng(seed)
    items = []
    for i in range(16):
        if i % 2 == 0:
            patches = (i % 6,)
        else:
            patches = (i % 6, (i + 1) % 6)
        items.append(
            ComputeItem(i, float(rng.exponential(1.0) + 0.1), patches, proc=0)
        )
    return LBProblem(
        n_procs=n_procs,
        computes=items,
        background=np.zeros(n_procs),
        patch_home={p: p % n_procs for p in range(6)},
    )


def phase_loads(problem, placement):
    early = np.zeros(problem.n_procs)
    late = np.zeros(problem.n_procs)
    for item in problem.computes:
        dest = placement[item.index]
        (late if len(item.patches) > 1 else early)[dest] += item.load
    return early, late


class TestPhaseAware:
    def test_total_valid_placement(self):
        p = mixed_phase_problem()
        placement = phase_aware_strategy(p)
        assert set(placement) == {i.index for i in p.computes}
        assert all(0 <= v < p.n_procs for v in placement.values())

    def test_each_phase_balanced(self):
        p = mixed_phase_problem(seed=3)
        placement = phase_aware_strategy(p)
        early, late = phase_loads(p, placement)
        for loads in (early, late):
            if loads.sum() > 0:
                assert loads.max() <= loads.mean() * 2.0

    def test_total_load_also_balanced(self):
        p = mixed_phase_problem(seed=5)
        stats = placement_stats(p, phase_aware_strategy(p))
        assert stats["imbalance_ratio"] < 1.6

    def test_beats_plain_greedy_on_phase_imbalance_metric(self):
        """Plain greedy may balance totals while clustering one phase; the
        phase-aware variant must keep the *worst per-phase peak* lower or
        equal on a phase-skewed input."""
        from repro.balancer.greedy import greedy_strategy

        p1 = mixed_phase_problem(seed=11)
        p2 = mixed_phase_problem(seed=11)
        pa = phase_aware_strategy(p1)
        g = greedy_strategy(p2)
        e1, l1 = phase_loads(p1, pa)
        e2, l2 = phase_loads(p2, g)
        worst_pa = max(e1.max(), l1.max())
        worst_g = max(e2.max(), l2.max())
        assert worst_pa <= worst_g * 1.05

    def test_empty_phase_handled(self):
        items = [ComputeItem(i, 1.0, (i % 3,), proc=0) for i in range(6)]
        p = LBProblem(n_procs=3, computes=items, background=np.zeros(3),
                      patch_home={i: i for i in range(3)})
        placement = phase_aware_strategy(p)
        assert len(placement) == 6

    def test_registered_in_strategy_table(self):
        from repro.balancer.strategies import STRATEGIES

        assert "phase_aware" in STRATEGIES
