"""Recursive coordinate bisection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balancer.rcb import recursive_coordinate_bisection


def grid_coords(nx, ny, nz):
    g = np.stack(np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz),
                             indexing="ij"), axis=-1)
    return g.reshape(-1, 3).astype(float)


class TestRCB:
    def test_all_points_assigned_in_range(self):
        coords = grid_coords(4, 4, 4)
        w = np.ones(64)
        out = recursive_coordinate_bisection(coords, w, 8)
        assert out.shape == (64,)
        assert out.min() >= 0 and out.max() < 8

    def test_uniform_weights_balanced(self):
        coords = grid_coords(4, 4, 4)
        w = np.ones(64)
        out = recursive_coordinate_bisection(coords, w, 8)
        counts = np.bincount(out, minlength=8)
        assert counts.min() >= 6 and counts.max() <= 10

    def test_weighted_split_tracks_weights(self):
        # half the points carry 9x the weight: they should spread over more procs
        coords = grid_coords(8, 1, 1)
        w = np.array([9.0] * 4 + [1.0] * 4)
        out = recursive_coordinate_bisection(coords, w, 4)
        loads = np.bincount(out, weights=w, minlength=4)
        assert loads.max() / loads.mean() < 2.0

    def test_more_procs_than_points_spreads(self):
        """The paper's round-robin degenerate case."""
        coords = grid_coords(3, 2, 1)  # 6 points
        out = recursive_coordinate_bisection(coords, np.ones(6), 24)
        assert len(set(out.tolist())) == 6  # each point on its own processor
        assert out.max() < 24

    def test_one_processor(self):
        coords = grid_coords(3, 3, 1)
        out = recursive_coordinate_bisection(coords, np.ones(9), 1)
        assert np.all(out == 0)

    def test_spatial_locality(self):
        """Points on the same processor should be spatially contiguous-ish:
        the average intra-processor spread is below the global spread."""
        rng = np.random.default_rng(0)
        coords = rng.random((200, 3)) * 100
        out = recursive_coordinate_bisection(coords, np.ones(200), 8)
        global_spread = coords.std(axis=0).mean()
        spreads = []
        for p in range(8):
            pts = coords[out == p]
            if len(pts) > 1:
                spreads.append(pts.std(axis=0).mean())
        assert np.mean(spreads) < global_spread

    def test_input_validation(self):
        with pytest.raises(ValueError):
            recursive_coordinate_bisection(np.zeros((3, 2)), np.ones(3), 2)
        with pytest.raises(ValueError):
            recursive_coordinate_bisection(np.zeros((3, 3)), np.ones(4), 2)
        with pytest.raises(ValueError):
            recursive_coordinate_bisection(np.zeros((3, 3)), np.ones(3), 0)

    @given(st.integers(1, 50), st.integers(1, 64), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_total_assignment(self, n, procs, seed):
        rng = np.random.default_rng(seed)
        coords = rng.random((n, 3)) * 10
        weights = rng.random(n) + 0.01
        out = recursive_coordinate_bisection(coords, weights, procs)
        assert out.shape == (n,)
        assert out.min() >= 0 and out.max() < procs
