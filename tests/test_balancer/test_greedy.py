"""The paper's greedy strategy: load balance + proxy-aware placement."""

import numpy as np
import pytest

from repro.balancer.greedy import greedy_strategy
from repro.balancer.problem import ComputeItem, LBProblem, placement_stats


def make_problem(n_procs=4, loads=None, patches=None, background=None,
                 patch_home=None):
    loads = loads if loads is not None else [1.0] * 8
    patches = patches if patches is not None else [(i % 4,) for i in range(len(loads))]
    items = [
        ComputeItem(index=i, load=l, patches=p, proc=0)
        for i, (l, p) in enumerate(zip(loads, patches))
    ]
    return LBProblem(
        n_procs=n_procs,
        computes=items,
        background=np.array(background if background is not None else [0.0] * n_procs),
        patch_home=patch_home if patch_home is not None else {i: i % n_procs for i in range(8)},
    )


class TestGreedy:
    def test_every_object_placed(self):
        p = make_problem()
        placement = greedy_strategy(p)
        assert set(placement) == {i.index for i in p.computes}
        assert all(0 <= v < p.n_procs for v in placement.values())

    def test_balances_uniform_loads(self):
        p = make_problem(n_procs=4, loads=[1.0] * 8)
        placement = greedy_strategy(p)
        stats = placement_stats(p, placement)
        assert stats["imbalance_ratio"] < 1.3

    def test_prefers_home_processor(self):
        """With slack everywhere, a compute lands where its patch lives."""
        p = LBProblem(
            n_procs=4,
            computes=[ComputeItem(0, 0.1, (2,), proc=0)],
            background=np.zeros(4),
            patch_home={2: 3},
        )
        placement = greedy_strategy(p)
        assert placement[0] == 3

    def test_respects_background_load(self):
        """A processor busy with background work receives fewer objects."""
        p = make_problem(
            n_procs=2,
            loads=[1.0] * 6,
            patches=[(0,)] * 6,
            background=[5.0, 0.0],
            patch_home={0: 0},
        )
        placement = greedy_strategy(p)
        on_busy = sum(1 for v in placement.values() if v == 0)
        assert on_busy <= 1

    def test_reuses_recorded_proxies(self):
        """Once one compute for patch 5 lands on a processor, later computes
        for patch 5 prefer the same processor (no new proxies)."""
        items = [ComputeItem(i, 0.01, (5,), proc=0) for i in range(3)]
        p = LBProblem(
            n_procs=8,
            computes=items,
            # uniform background dominates: co-location never overloads
            background=np.full(8, 1.0),
            patch_home={5: 2},
        )
        placement = greedy_strategy(p)
        assert set(placement.values()) == {2}  # all with the home patch

    def test_overload_forces_spread(self):
        """When one processor cannot hold everything, objects spill."""
        items = [ComputeItem(i, 1.0, (5,), proc=0) for i in range(8)]
        p = LBProblem(
            n_procs=4,
            computes=items,
            background=np.zeros(4),
            patch_home={5: 2},
        )
        placement = greedy_strategy(p)
        stats = placement_stats(p, placement)
        assert stats["imbalance_ratio"] <= 1.2

    def test_proxy_counting_in_stats(self):
        items = [ComputeItem(0, 1.0, (0, 1), proc=0)]
        p = LBProblem(
            n_procs=2,
            computes=items,
            background=np.zeros(2),
            patch_home={0: 0, 1: 1},
        )
        placement = {0: 0}
        stats = placement_stats(p, placement)
        assert stats["n_proxies"] == 1  # patch 1 proxied on proc 0

    def test_better_than_random_on_skewed_input(self):
        rng = np.random.default_rng(0)
        loads = rng.exponential(1.0, size=40)
        patches = [(int(rng.integers(10)),) for _ in range(40)]
        p = make_problem(n_procs=8, loads=loads.tolist(), patches=patches,
                         patch_home={i: i % 8 for i in range(10)})
        from repro.balancer.strategies import random_strategy

        g = placement_stats(p, greedy_strategy(p))
        r = placement_stats(p, random_strategy(p, seed=1))
        assert g["max_load"] <= r["max_load"]
