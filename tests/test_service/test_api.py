"""REST front end: endpoints, NDJSON streaming, error mapping.

Everything runs against an ephemeral-port server with stdlib urllib —
the same stack a CI smoke job or a shell script with curl exercises.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceServer, SimulationService, TenantQuota


@pytest.fixture
def server(tmp_path):
    service = SimulationService(
        worker_slots=2, lanes=2, slice_steps=3, workdir=tmp_path
    )
    srv = ServiceServer(service, port=0)
    srv.start()
    yield srv
    srv.stop()


def request(server, method, path, body=None, timeout=60):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        server.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def stream(server, job_id, query="?follow=1", timeout=120):
    url = server.url + f"/jobs/{job_id}/stream{query}"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        assert resp.headers["Content-Type"] == "application/x-ndjson"
        return [json.loads(line) for line in resp.read().decode().splitlines()]


class TestEndpoints:
    def test_healthz(self, server):
        assert request(server, "GET", "/healthz") == (200, {"ok": True})

    def test_submit_stream_and_detail(self, server):
        code, sub = request(
            server,
            "POST",
            "/jobs",
            {"spec": {"waters": 15, "steps": 5, "seed": 1, "traj_every": 2},
             "tenant": "a"},
        )
        assert code == 201
        jid = sub["id"]
        records = stream(server, jid)
        steps = [r["step"] for r in records if r["type"] == "step"]
        assert steps == [1, 2, 3, 4, 5]
        frames = [r for r in records if r["type"] == "frame"]
        assert frames[-1]["final"] is True
        # offset streaming returns the suffix only
        tail = stream(server, jid, query="?from=4&follow=1")
        assert tail == records[4:]
        code, detail = request(server, "GET", f"/jobs/{jid}")
        assert code == 200
        assert detail["state"] == "completed"
        assert detail["spec"]["waters"] == 15
        code, listing = request(server, "GET", "/jobs?tenant=a")
        assert code == 200 and len(listing["jobs"]) == 1

    def test_stats(self, server):
        code, stats = request(server, "GET", "/stats")
        assert code == 200
        assert stats["budget"]["total"] == 2

    def test_bad_spec_maps_to_400(self, server):
        code, body = request(
            server, "POST", "/jobs", {"spec": {"bogus": 1}}
        )
        assert code == 400 and "unknown spec field" in body["error"]
        code, body = request(server, "POST", "/jobs", {})
        assert code == 400 and "spec" in body["error"]

    def test_unknown_job_maps_to_404(self, server):
        code, body = request(server, "GET", "/jobs/nope")
        assert code == 404
        code, _ = request(server, "GET", "/not/a/resource")
        assert code == 404
        code, _ = request(server, "POST", "/jobs/nope/cancel")
        assert code == 404

    def test_suspend_resume_cancel_over_rest(self, server):
        code, sub = request(
            server,
            "POST",
            "/jobs",
            {"spec": {"waters": 15, "steps": 400, "seed": 2,
                      "checkpoint_every": 10}},
        )
        jid = sub["id"]
        code, body = request(server, "POST", f"/jobs/{jid}/suspend")
        assert code == 200
        server.service.wait(jid, ["suspended"], timeout=60)
        code, body = request(server, "POST", f"/jobs/{jid}/resume")
        # the scheduler thread may re-admit the job before the handler
        # serializes the response, so "running" is as valid as "queued"
        assert code == 200 and body["state"] in ("queued", "running")
        code, body = request(server, "POST", f"/jobs/{jid}/cancel")
        assert code == 200
        server.service.wait(jid, ["cancelled"], timeout=60)


class TestQuotaOverRest:
    def test_429_through_http(self, tmp_path):
        service = SimulationService(
            worker_slots=2,
            workdir=tmp_path,
            default_quota=TenantQuota(max_queued=0),
        )
        srv = ServiceServer(service, port=0)
        srv.start()
        try:
            code, body = request(
                srv, "POST", "/jobs", {"spec": {"waters": 10, "steps": 1}}
            )
            assert code == 429 and "max_queued=0" in body["error"]
        finally:
            srv.stop()


class TestShutdownEndpoint:
    def test_post_shutdown_stops_server(self, tmp_path):
        service = SimulationService(worker_slots=2, workdir=tmp_path)
        srv = ServiceServer(service, port=0)
        srv.start()
        code, body = request(srv, "POST", "/shutdown")
        assert code == 200 and body == {"stopping": True}
        assert srv.wait(timeout=30)
        # idempotent double-stop
        srv.stop()
