"""Engine-as-job adapter: spec validation, slicing, suspend/resume.

The determinism contract under test: a job's record stream is
bit-identical to a solo uninterrupted run of the same spec, whatever the
slice boundaries and however many suspend/resume cycles happen.
"""

import pytest

from repro.md.jobs import SimJob, SimSpec


def run_solo(spec: SimSpec, tmpdir, slice_steps: int = 100) -> list[dict]:
    job = SimJob(spec, tmpdir)
    job.open()
    try:
        while not job.done:
            job.step_slice(slice_steps)
    finally:
        job.close()
    return job.records


class TestSimSpec:
    def test_roundtrip(self):
        spec = SimSpec(waters=30, steps=7, seed=2, workers=2, ewald=True)
        assert SimSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            SimSpec.from_dict({"waters": 10, "bogus": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            SimSpec.from_dict([1, 2])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"waters": 0},
            {"steps": 0},
            {"workers": -1},
            {"seed": -1},
            {"checkpoint_every": -1},
            {"fault_plan": "kill=0@1", "workers": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SimSpec(**kwargs)

    def test_worker_slots(self):
        assert SimSpec(workers=1).worker_slots == 0  # sequential: no pool
        assert SimSpec(workers=2).worker_slots == 2
        assert SimSpec(workers=4).worker_slots == 4


class TestSlicing:
    def test_slicing_is_invisible(self, tmp_path):
        """3+2+... slices emit the same stream as one big slice."""
        spec = SimSpec(waters=20, steps=9, seed=5, traj_every=4)
        solo = run_solo(spec, tmp_path / "solo")
        sliced = SimJob(spec, tmp_path / "sliced")
        sliced.open()
        try:
            while not sliced.done:
                sliced.step_slice(2)
        finally:
            sliced.close()
        assert sliced.records == solo

    def test_slice_caps_at_remaining_steps(self, tmp_path):
        job = SimJob(SimSpec(waters=15, steps=3, seed=1), tmp_path)
        job.open()
        try:
            out = job.step_slice(50)
        finally:
            job.close()
        assert job.steps_done == 3 and job.done
        # 3 step records + the final frame
        assert [r["type"] for r in out] == ["step"] * 3 + ["frame"]
        assert out[-1]["final"] is True

    def test_step_slice_requires_open(self, tmp_path):
        job = SimJob(SimSpec(waters=15, steps=3), tmp_path)
        with pytest.raises(RuntimeError, match="not open"):
            job.step_slice(1)


class TestSuspendResume:
    def test_resume_stream_bit_identical(self, tmp_path):
        """Suspend past a checkpoint; the replayed steps are suppressed
        and the final stream equals the uninterrupted run's exactly."""
        spec = SimSpec(
            waters=20, steps=10, seed=7, checkpoint_every=4, traj_every=5
        )
        solo = run_solo(spec, tmp_path / "solo")

        job = SimJob(spec, tmp_path / "job")
        job.open()
        job.step_slice(6)  # past the step-4 checkpoint
        job.suspend()
        assert job.engine is None
        assert job.steps_done == 4  # rolled back to the durable checkpoint
        job.open()  # restores from checkpoint
        assert job.steps_done == 4
        while not job.done:
            job.step_slice(3)
        job.close()
        assert job.records == solo

    def test_suspend_without_checkpoint_replays_from_zero(self, tmp_path):
        spec = SimSpec(waters=15, steps=6, seed=3)  # checkpoint_every=0
        solo = run_solo(spec, tmp_path / "solo")
        job = SimJob(spec, tmp_path / "job")
        job.open()
        job.step_slice(4)
        job.suspend()
        assert job.steps_done == 0  # nothing durable: full replay
        job.open()
        job.step_slice(100)
        job.close()
        assert job.records == solo

    def test_suspend_when_closed_is_noop(self, tmp_path):
        job = SimJob(SimSpec(waters=15, steps=3), tmp_path)
        job.suspend()  # never opened
        assert job.steps_done == 0


class TestBackendProvenance:
    def test_provenance_survives_close(self, tmp_path):
        job = SimJob(SimSpec(waters=15, steps=2, backend="numpy"), tmp_path)
        job.open()
        job.step_slice(2)
        job.close()
        assert job.backend_provenance()["backend"] == "numpy"

    def test_unopened_job_has_no_provenance(self, tmp_path):
        job = SimJob(SimSpec(waters=15, steps=2), tmp_path)
        assert job.backend_provenance() == {
            "backend": None,
            "workdb_backend": None,
        }
