"""Service soak: concurrent mixed jobs, faults, suspend/resume, shm hygiene.

The acceptance scenario for the job layer: one service instance runs
several concurrent jobs of mixed sizes — one parallel job with an
injected worker kill, one job suspended mid-run and resumed — and every
job's record stream must be bit-identical to a solo run of the same
spec, with zero shared-memory segments left after shutdown (including
the crash path, where a process exits without ever calling shutdown).
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.md.jobs import SimJob, SimSpec
from repro.pool import attach_segment
from repro.service import JobState, SimulationService

# mixed sizes: two small sequential, one with checkpoints (the one we
# suspend), one parallel with a worker killed mid-run.  waters=120 at
# cutoff 6.0 is the smallest box that sustains a real 2-worker pool.
SPECS = {
    "small-a": SimSpec(waters=20, steps=30, seed=11, traj_every=10),
    "small-b": SimSpec(waters=25, steps=24, seed=12),
    "suspended": SimSpec(waters=20, steps=160, seed=13, checkpoint_every=8),
    "killed": SimSpec(
        waters=120,
        cutoff=6.0,
        steps=6,
        seed=14,
        workers=2,
        fault_plan="kill=0@2",
    ),
}


def solo_records(spec: SimSpec, workdir) -> list[dict]:
    job = SimJob(spec, workdir)
    job.open()
    try:
        while not job.done:
            job.step_slice(100)
    finally:
        job.close()
    return job.records


def live_segment_names(svc: SimulationService) -> set[str]:
    """Snapshot the shm segment names of every live engine pool."""
    names: set[str] = set()
    for job in svc.jobs():
        engine = job.sim.engine
        nb = getattr(engine, "_nb", None)
        pool = getattr(nb, "_pool", None)
        registry = getattr(pool, "_registry", None)
        if registry is not None:
            names.update(registry.names().values())
    return names


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_soak_concurrent_jobs_bit_identical_and_leak_free(tmp_path):
    baselines = {
        name: solo_records(spec, tmp_path / "solo" / name)
        for name, spec in SPECS.items()
    }

    svc = SimulationService(
        worker_slots=2, lanes=3, slice_steps=4, workdir=tmp_path / "svc"
    )
    seen_segments: set[str] = set()
    with svc:
        jobs = {
            name: svc.submit(spec, tenant="soak", job_id=name)
            for name, spec in SPECS.items()
        }

        # suspend the checkpointed job mid-run, then resume it
        deadline = time.monotonic() + 120
        while jobs["suspended"].sim.steps_done < 20:
            assert time.monotonic() < deadline, "job never reached step 20"
            seen_segments |= live_segment_names(svc)
            time.sleep(0.01)
        svc.suspend("suspended")
        svc.wait("suspended", [JobState.SUSPENDED], timeout=60)
        assert jobs["suspended"].lease is None
        svc.resume("suspended")

        while any(not j.terminal for j in jobs.values()):
            seen_segments |= live_segment_names(svc)
            time.sleep(0.01)
            assert time.monotonic() < deadline, "soak did not converge"

        for name, job in jobs.items():
            assert job.state is JobState.COMPLETED, (name, job.error)
            assert job.sim.records == baselines[name], name

        # the killed job really lost a worker and recovered
        assert seen_segments, "parallel job never showed a live pool"
        k_events = [e["event"] for e in jobs["killed"].events]
        assert "finished" in k_events
        assert svc.budget.leased == 0

    # shutdown must unlink every segment any job ever mapped
    for name in seen_segments:
        with pytest.raises(FileNotFoundError):
            attach_segment(name)


_CRASH_SCRIPT = r"""
import json, sys, time
from repro.service import SimulationService

svc = SimulationService(worker_slots=2, lanes=2, slice_steps=2)
svc.start()
job = svc.submit(
    {"waters": 120, "cutoff": 6.0, "steps": 2000, "seed": 3, "workers": 2}
)
deadline = time.monotonic() + 60
names = []
while not names:
    assert time.monotonic() < deadline, "pool never appeared"
    engine = job.sim.engine
    nb = getattr(engine, "_nb", None)
    pool = getattr(nb, "_pool", None)
    if pool is not None and pool._registry is not None:
        names = list(pool._registry.names().values())
    time.sleep(0.01)
print(json.dumps(names), flush=True)
# exit WITHOUT shutdown: the pool's atexit sweep must unlink everything
"""


def test_crash_path_atexit_sweep_unlinks_segments():
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.run(
        [sys.executable, "-c", _CRASH_SCRIPT],
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
        cwd=os.getcwd(),
    )
    assert proc.returncode == 0, proc.stderr
    names = json.loads(proc.stdout.splitlines()[-1])
    assert names, "subprocess never mapped a segment"
    for name in names:
        with pytest.raises(FileNotFoundError):
            attach_segment(name)
