"""SimulationService scheduling semantics: quotas, priorities, admission,
suspend/resume/cancel, and cross-job backend isolation (the global-state
leak regression).
"""

import dataclasses

import pytest

import repro.backend as backend_registry
from repro.md.jobs import SimJob, SimSpec
from repro.service import (
    JobState,
    QuotaError,
    SimulationService,
    TenantQuota,
)

SMALL = {"waters": 15, "steps": 4, "seed": 1}


def make_service(**kwargs) -> SimulationService:
    kwargs.setdefault("worker_slots", 4)
    kwargs.setdefault("lanes", 2)
    kwargs.setdefault("slice_steps", 2)
    return SimulationService(**kwargs)


class TestSubmission:
    def test_submit_assigns_ids_and_tasks(self, tmp_path):
        svc = make_service(workdir=tmp_path)
        a = svc.submit(SMALL, tenant="t")
        b = svc.submit(SMALL, tenant="t")
        assert a.id != b.id
        assert a.task_id != b.task_id
        assert a.task_id in svc.workdb.tasks
        assert svc.workdb.tasks[a.task_id].kind == "job"
        assert a.state is JobState.QUEUED

    def test_duplicate_id_rejected(self, tmp_path):
        svc = make_service(workdir=tmp_path)
        svc.submit(SMALL, job_id="x")
        with pytest.raises(ValueError, match="already exists"):
            svc.submit(SMALL, job_id="x")

    def test_auto_workers_rejected(self, tmp_path):
        svc = make_service(workdir=tmp_path)
        with pytest.raises(ValueError, match="explicit worker count"):
            svc.submit({**SMALL, "workers": 0})

    def test_oversized_job_rejected_at_submit(self, tmp_path):
        svc = make_service(workdir=tmp_path, worker_slots=2)
        with pytest.raises(ValueError, match="budget is 2"):
            svc.submit({**SMALL, "workers": 4})

    def test_max_queued_quota_raises_429_material(self, tmp_path):
        svc = make_service(
            workdir=tmp_path,
            default_quota=TenantQuota(max_queued=1),
        )
        svc.submit(SMALL, tenant="t")  # queued (scheduler not started)
        with pytest.raises(QuotaError, match="max_queued=1"):
            svc.submit(SMALL, tenant="t")
        # other tenants are unaffected
        svc.submit(SMALL, tenant="other")


class TestAdmission:
    """Admission policy tested synchronously: _admit_ready is called
    directly with the scheduler thread not running, so queue contents
    are deterministic."""

    def test_priority_then_fifo(self, tmp_path):
        svc = make_service(
            workdir=tmp_path,
            default_quota=TenantQuota(max_running=1),
        )
        low = svc.submit(SMALL, tenant="t", priority=0)
        high = svc.submit(SMALL, tenant="t", priority=5)
        svc._admit_ready()
        assert high.state is JobState.RUNNING
        assert low.state is JobState.QUEUED

    def test_worker_budget_packs_small_around_big(self, tmp_path):
        svc = make_service(workdir=tmp_path, worker_slots=3)
        big = svc.submit({**SMALL, "workers": 3}, priority=9)
        blocked = svc.submit({**SMALL, "workers": 2}, priority=5)
        seq = svc.submit(SMALL, priority=0)  # 0 slots: always fits
        svc._admit_ready()
        assert big.state is JobState.RUNNING and big.lease.slots == 3
        assert blocked.state is JobState.QUEUED  # no head-of-line block:
        assert seq.state is JobState.RUNNING  # the 0-slot job slips past
        assert svc.budget.leased == 3
        # releasing the big job lets the blocked one in
        svc._release_lease(big)
        big.state = JobState.COMPLETED
        svc._admit_ready()
        assert blocked.state is JobState.RUNNING

    def test_tenant_worker_cap_enforced(self, tmp_path):
        svc = make_service(
            workdir=tmp_path,
            worker_slots=8,
            default_quota=TenantQuota(max_running=8, max_workers=2),
        )
        a = svc.submit({**SMALL, "workers": 2}, tenant="t")
        b = svc.submit({**SMALL, "workers": 2}, tenant="t")
        other = svc.submit({**SMALL, "workers": 2}, tenant="u")
        svc._admit_ready()
        assert a.state is JobState.RUNNING
        assert b.state is JobState.QUEUED  # tenant t is at max_workers
        assert other.state is JobState.RUNNING  # tenant u unaffected


class TestLifecycle:
    def test_jobs_complete_and_match_solo(self, tmp_path):
        spec = SimSpec(waters=20, steps=8, seed=3, traj_every=4)
        solo = SimJob(spec, tmp_path / "solo")
        solo.open()
        while not solo.done:
            solo.step_slice(100)
        solo.close()

        with make_service(workdir=tmp_path / "svc") as svc:
            job = svc.submit(spec)
            svc.wait(job.id, [JobState.COMPLETED], timeout=120)
            assert job.sim.records == solo.records

    def test_cancel_queued_job(self, tmp_path):
        svc = make_service(workdir=tmp_path)
        job = svc.submit(SMALL)
        svc.cancel(job.id)
        assert job.state is JobState.CANCELLED
        svc.cancel(job.id)  # idempotent on terminal jobs

    def test_suspend_resume_via_service(self, tmp_path):
        spec = SimSpec(waters=20, steps=60, seed=2, checkpoint_every=5)
        with make_service(workdir=tmp_path, slice_steps=2) as svc:
            job = svc.submit(spec)
            svc.wait(job.id, [JobState.RUNNING], timeout=60)
            svc.suspend(job.id)
            svc.wait(job.id, [JobState.SUSPENDED], timeout=60)
            assert not job.sim.active  # engine released
            assert job.lease is None
            svc.resume(job.id)
            svc.wait(job.id, [JobState.COMPLETED], timeout=300)
            steps = [r["step"] for r in job.sim.records if r["type"] == "step"]
            assert steps == list(range(1, 61))  # exactly one record per step

    def test_suspend_queued_job_skips_admission(self, tmp_path):
        svc = make_service(workdir=tmp_path)
        job = svc.submit(SMALL)
        svc.suspend(job.id)
        assert job.state is JobState.SUSPENDED
        svc._admit_ready()
        assert job.state is JobState.SUSPENDED
        svc.resume(job.id)
        assert job.state is JobState.QUEUED
        with pytest.raises(ValueError, match="not suspended"):
            svc.resume(job.id)  # already re-queued

    def test_failed_job_carries_traceback(self, tmp_path):
        with make_service(workdir=tmp_path) as svc:
            job = svc.submit(SMALL)

            def boom():
                raise RuntimeError("engine exploded")

            job.sim.open = boom
            svc.wait(job.id, [JobState.FAILED], timeout=60)
            assert "engine exploded" in job.error
            assert svc.budget.leased == 0

    def test_stats_shape(self, tmp_path):
        with make_service(workdir=tmp_path) as svc:
            job = svc.submit(SMALL, tenant="t")
            svc.wait(job.id, [JobState.COMPLETED], timeout=120)
            stats = svc.stats()
            assert stats["jobs"] == {"completed": 1}
            assert stats["tenants"]["t"]["jobs"] == 1
            assert stats["budget"] == {"total": 4, "leased": 0}


class TestBackendIsolation:
    """Bugfix regression: per-job backends must ride the engine adapter,
    never the process-global default — one job requesting the JIT backend
    must not flip another job's kernels or blur WorkDB provenance."""

    @pytest.fixture
    def fake_numba(self, monkeypatch):
        """A renamed copy of the numpy backend standing in for numba.

        The copy pickles by reference (module-level kernel functions), so
        spawned worker processes resolve it too, exactly like a real
        alternative backend."""
        fake = dataclasses.replace(
            backend_registry.get_backend("numpy"),
            name="numba",
            compiled=True,
        )
        monkeypatch.setitem(backend_registry._instances, "numba", fake)
        yield fake

    def test_concurrent_jobs_keep_backend_provenance_distinct(
        self, tmp_path, fake_numba
    ):
        default_before = backend_registry.default_backend().name
        # waters=120 at cutoff 6.0 is the smallest box whose task count
        # sustains a real 2-worker pool (smaller boxes fall back)
        with make_service(workdir=tmp_path, worker_slots=4) as svc:
            a = svc.submit(
                {"waters": 120, "cutoff": 6.0, "steps": 3, "seed": 1,
                 "workers": 2, "backend": "numpy"}
            )
            b = svc.submit(
                {"waters": 120, "cutoff": 6.0, "steps": 3, "seed": 2,
                 "workers": 2, "backend": "numba"}
            )
            svc.wait(a.id, [JobState.COMPLETED], timeout=300)
            svc.wait(b.id, [JobState.COMPLETED], timeout=300)
            prov_a = a.detail()
            prov_b = b.detail()
        # pre-fix code routed the request through set_default_backend, so
        # whichever job opened last stamped *both* engines and both WorkDBs
        assert prov_a["backend"] == "numpy"
        assert prov_b["backend"] == "numba"
        assert prov_a["workdb_backend"] == "numpy"
        assert prov_b["workdb_backend"] == "numba"
        # and the process-wide default never moved
        assert backend_registry.default_backend().name == default_before
