"""Non-bonded kernel: switching function, forces, exclusions, pair counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.nonbonded import (
    NonbondedOptions,
    compute_nonbonded,
    count_interacting_pairs,
    switching_function,
)


class TestOptions:
    def test_default_switch(self):
        opts = NonbondedOptions(cutoff=12.0)
        assert opts.switch == pytest.approx(10.2)

    def test_explicit_switch(self):
        opts = NonbondedOptions(cutoff=12.0, switch_dist=10.0)
        assert opts.switch == 10.0

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            NonbondedOptions(cutoff=-1.0)

    def test_rejects_switch_beyond_cutoff(self):
        with pytest.raises(ValueError):
            NonbondedOptions(cutoff=10.0, switch_dist=11.0)


class TestSwitchingFunction:
    def test_one_below_switch(self):
        S, dS = switching_function(np.array([4.0]), switch=3.0, cutoff=5.0)
        assert S[0] == 1.0 and dS[0] == 0.0

    def test_zero_beyond_cutoff(self):
        S, dS = switching_function(np.array([26.0]), switch=3.0, cutoff=5.0)
        assert S[0] == 0.0

    def test_continuous_at_boundaries(self):
        s, c = 3.0, 5.0
        eps = 1e-9
        S_lo, _ = switching_function(np.array([s * s + eps]), s, c)
        S_hi, _ = switching_function(np.array([c * c - eps]), s, c)
        assert S_lo[0] == pytest.approx(1.0, abs=1e-6)
        assert S_hi[0] == pytest.approx(0.0, abs=1e-6)

    @given(st.floats(1.0, 24.9))
    @settings(max_examples=50, deadline=None)
    def test_bounded_zero_one(self, r2):
        S, _ = switching_function(np.array([r2]), 3.0, 5.0)
        assert 0.0 <= S[0] <= 1.0

    def test_monotone_decreasing_in_window(self):
        r2 = np.linspace(9.0, 25.0, 100)
        S, _ = switching_function(r2, 3.0, 5.0)
        assert np.all(np.diff(S) <= 1e-12)

    def test_derivative_matches_finite_difference(self):
        r2 = np.linspace(9.5, 24.5, 30)
        S, dS = switching_function(r2, 3.0, 5.0)
        h = 1e-6
        Sp, _ = switching_function(r2 + h, 3.0, 5.0)
        Sm, _ = switching_function(r2 - h, 3.0, 5.0)
        np.testing.assert_allclose(dS, (Sp - Sm) / (2 * h), rtol=1e-4, atol=1e-8)


class TestComputeNonbonded:
    def test_forces_match_numerical_gradient(self, water64):
        system = water64.copy()
        opts = NonbondedOptions(cutoff=6.0)
        res = compute_nonbonded(system, opts)
        h = 1e-5
        for atom in range(0, 9, 3):
            for d in range(3):
                orig = system.positions[atom, d]
                system.positions[atom, d] = orig + h
                ep = compute_nonbonded(system, opts).energy
                system.positions[atom, d] = orig - h
                em = compute_nonbonded(system, opts).energy
                system.positions[atom, d] = orig
                num = -(ep - em) / (2 * h)
                assert res.forces[atom, d] == pytest.approx(num, rel=1e-4, abs=1e-5)

    def test_net_force_zero(self, water64):
        res = compute_nonbonded(water64, NonbondedOptions(cutoff=6.0))
        np.testing.assert_allclose(res.forces.sum(axis=0), 0.0, atol=1e-9)

    def test_excluded_pairs_do_not_interact(self, water64):
        """Intramolecular O-H and H-H pairs are excluded: a lone water has
        zero non-bonded energy."""
        from repro.builder import small_water_box

        lone = small_water_box(1, seed=2, relax=False)
        res = compute_nonbonded(lone, NonbondedOptions(cutoff=4.0))
        assert res.n_pairs == 0
        assert res.energy == 0.0
        np.testing.assert_allclose(res.forces, 0.0)

    def test_energy_beyond_cutoff_is_zero(self):
        """Two waters far apart contribute nothing."""
        from repro.builder.assembler import SystemAssembler
        from repro.builder.water import water_molecule
        from repro.util.rng import make_rng

        asm = SystemAssembler(np.array([60.0, 60.0, 60.0]))
        rng = make_rng(0)
        for center in ([5.0, 5.0, 5.0], [30.0, 30.0, 30.0]):
            pos, q, names, topo = water_molecule(np.array(center), rng)
            asm.add_component(pos, q, names, topo, "WAT")
        s = asm.finalize()
        res = compute_nonbonded(s, NonbondedOptions(cutoff=8.0))
        assert res.energy == 0.0

    def test_empty_system(self):
        from repro.md.forcefield import default_forcefield
        from repro.md.system import MolecularSystem
        from repro.md.topology import Topology

        ff = default_forcefield()
        s = MolecularSystem(
            positions=np.zeros((1, 3)),
            velocities=np.zeros((1, 3)),
            charges=np.zeros(1),
            type_indices=np.zeros(1, dtype=int),
            topology=Topology(),
            forcefield=ff,
            box=np.array([10.0, 10.0, 10.0]),
        )
        res = compute_nonbonded(s)
        assert res.energy == 0.0 and res.n_pairs == 0

    def test_scale14_zero_drops_14_interactions(self, peptide):
        s1 = peptide.copy()
        s1.forcefield.scale14_lj = 1.0
        s1.forcefield.scale14_elec = 1.0
        e_full = compute_nonbonded(s1, NonbondedOptions(cutoff=10.0))
        s1.forcefield.scale14_lj = 0.0
        s1.forcefield.scale14_elec = 0.0
        e_none = compute_nonbonded(s1, NonbondedOptions(cutoff=10.0))
        s1.forcefield.scale14_lj = 1.0
        s1.forcefield.scale14_elec = 1.0
        assert e_full.n_pairs > e_none.n_pairs
        assert e_full.energy != pytest.approx(e_none.energy)


class TestCountInteractingPairs:
    def test_self_count_matches_enumeration(self):
        rng = np.random.default_rng(5)
        box = np.array([10.0, 10.0, 10.0])
        pos = rng.random((20, 3)) * box
        n = count_interacting_pairs(pos, None, box, 3.0)
        from repro.util.pbc import minimum_image

        brute = 0
        for i in range(20):
            d = minimum_image(pos[i + 1 :] - pos[i], box)
            brute += int(np.count_nonzero(np.einsum("ij,ij->i", d, d) < 9.0))
        assert n == brute

    def test_cross_count_symmetric(self):
        rng = np.random.default_rng(6)
        box = np.array([10.0, 10.0, 10.0])
        a = rng.random((15, 3)) * box
        b = rng.random((12, 3)) * box
        assert count_interacting_pairs(a, b, box, 4.0) == count_interacting_pairs(
            b, a, box, 4.0
        )

    def test_empty_groups(self):
        box = np.ones(3) * 10
        assert count_interacting_pairs(np.zeros((0, 3)), None, box, 3.0) == 0
        assert count_interacting_pairs(np.zeros((1, 3)), np.zeros((0, 3)), box, 3.0) == 0
