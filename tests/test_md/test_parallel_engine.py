"""The real shared-memory parallel engine.

Cross-engine agreement (parallel == sequential within 1e-9 at every worker
count), determinism (same worker count -> bit-identical trajectories), NVE
energy conservation on the parallel path, and pool lifecycle (fallback,
close, context manager).
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.builder import small_water_box
from repro.md.engine import SequentialEngine, make_engine
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import (
    HAS_SHARED_MEMORY,
    ParallelEngine,
    ParallelNonbonded,
    _contiguous_partition,
)

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="platform lacks multiprocessing.shared_memory"
)

OPTS = NonbondedOptions(cutoff=8.0)


@pytest.fixture(scope="module")
def water600():
    """A 600-molecule water box (1800 atoms) — 2x2x2 task cells at 9.5 Å."""
    return small_water_box(600, seed=7, relax=False)


def sequential_reference(system, options=OPTS):
    eng = SequentialEngine(system.copy(), options, pairlist=None)
    forces = eng.compute_forces()
    return forces, eng.report()


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_water_box_forces_and_energies(self, water600, workers):
        f_ref, rep_ref = sequential_reference(water600)
        sys_par = water600.copy()
        with ParallelEngine(sys_par, options=OPTS, workers=workers) as eng:
            if workers > 1:
                assert eng.parallel and eng.workers == workers
            f_par = eng.compute_forces()
            rep_par = eng.report()
        scale = np.abs(f_ref).max()
        assert np.allclose(f_par, f_ref, rtol=1e-9, atol=1e-9 * scale)
        assert rep_par.lj == pytest.approx(rep_ref.lj, rel=1e-9)
        assert rep_par.elec == pytest.approx(rep_ref.elec, rel=1e-9)
        assert rep_par.n_pairs == rep_ref.n_pairs

    @pytest.mark.parametrize("workers", [2, 4])
    def test_protein_ion_assembly(self, assembly, workers):
        f_ref, rep_ref = sequential_reference(assembly)
        sys_par = assembly.copy()
        with ParallelEngine(sys_par, options=OPTS, workers=workers) as eng:
            assert eng.parallel
            f_par = eng.compute_forces()
            rep_par = eng.report()
        scale = np.abs(f_ref).max()
        assert np.allclose(f_par, f_ref, rtol=1e-9, atol=1e-9 * scale)
        assert rep_par.lj == pytest.approx(rep_ref.lj, rel=1e-9)
        assert rep_par.elec == pytest.approx(rep_ref.elec, rel=1e-9)
        assert rep_par.n_pairs == rep_ref.n_pairs

    def test_agreement_holds_across_steps(self, water600):
        """Pairlist reuse and rebuilds on both paths stay in agreement."""
        a = water600.copy()
        b = water600.copy()
        a.assign_velocities(300.0, seed=5)
        b.assign_velocities(300.0, seed=5)
        seq = SequentialEngine(a, OPTS, VelocityVerlet(dt=1.0), pairlist=None)
        with ParallelEngine(b, OPTS, VelocityVerlet(dt=1.0), workers=2) as par:
            assert par.parallel
            for _ in range(5):
                rs = seq.step()
                rp = par.step()
                assert rp.total == pytest.approx(rs.total, rel=1e-9)
            assert par._nb.n_reuses > 0  # the Verlet lists actually amortize
        assert np.allclose(a.positions, b.positions, rtol=0, atol=1e-9)


class TestDeterminism:
    def test_same_worker_count_bit_identical(self, water600):
        trajectories = []
        for _run in range(2):
            s = water600.copy()
            s.assign_velocities(300.0, seed=13)
            with ParallelEngine(s, options=OPTS, workers=3) as eng:
                assert eng.parallel
                reports = eng.run(5)
            trajectories.append(
                (s.positions.copy(), s.velocities.copy(), reports[-1].total)
            )
        (p0, v0, e0), (p1, v1, e1) = trajectories
        assert np.array_equal(p0, p1)
        assert np.array_equal(v0, v1)
        assert e0 == e1


class TestEnergyConservation:
    def test_nve_drift_bound_200_steps_parallel(self):
        """Secular drift on the parallel path matches the sequential bound."""
        system = small_water_box(100, seed=4)
        system.assign_velocities(300.0, seed=11)
        opts = NonbondedOptions(cutoff=5.0, switch_dist=4.0)
        with ParallelEngine(
            system, opts, VelocityVerlet(dt=0.5), workers=2, skin=1.0
        ) as engine:
            assert engine.parallel
            e0 = engine.step().total
            totals = [rep.total for rep in engine.run(200)]
        rel_dev = np.abs(np.array(totals) - e0) / abs(e0)
        assert rel_dev.max() < 5e-3, f"max relative drift {rel_dev.max():.2e}"
        assert abs(totals[-1] - e0) / abs(e0) < 5e-3


class TestLifecycle:
    def test_workers_one_is_sequential(self, water600):
        eng = ParallelEngine(water600.copy(), options=OPTS, workers=1)
        assert not eng.parallel
        assert eng.workers == 1
        eng.close()  # no-op, must not raise

    def test_small_box_falls_back(self):
        # one task cell only -> nothing to distribute -> sequential fallback
        s = small_water_box(50, seed=1, relax=False)
        with ParallelEngine(s, options=OPTS, workers=4) as eng:
            assert not eng.parallel
            f = eng.compute_forces()
        ref, _ = sequential_reference(s)
        assert np.allclose(f, ref, rtol=1e-12, atol=1e-12)

    def test_close_is_idempotent_and_degrades_gracefully(self, water600):
        eng = ParallelEngine(water600.copy(), options=OPTS, workers=2)
        assert eng.parallel
        eng.close()
        eng.close()
        assert not eng.parallel
        # the engine still works after close, on the sequential path
        f = eng.compute_forces()
        ref, _ = sequential_reference(water600)
        assert np.allclose(f, ref, rtol=1e-9, atol=1e-9)

    def test_evaluator_protocol_errors(self, water600):
        nb = ParallelNonbonded(water600.copy(), OPTS, n_workers=2)
        assert nb.active
        try:
            with pytest.raises(RuntimeError, match="without a dispatch"):
                nb.collect()
            nb.dispatch()
            with pytest.raises(RuntimeError, match="outstanding"):
                nb.dispatch()
            nb.collect()
        finally:
            nb.close()
        with pytest.raises(RuntimeError, match="not active"):
            nb.dispatch()

    def test_make_engine_factory(self, water600):
        seq = make_engine(water600.copy(), OPTS, workers=1)
        assert type(seq) is SequentialEngine
        with make_engine(water600.copy(), OPTS, workers=2) as par:
            assert isinstance(par, ParallelEngine)
            assert par.parallel

    def test_workers_clamped_to_task_count(self, water600):
        # 2x2x2 grid -> far fewer tasks than 64 requested workers
        with ParallelEngine(water600.copy(), options=OPTS, workers=64) as eng:
            assert eng.parallel
            assert 1 < eng.workers <= 64
            f = eng.compute_forces()
        ref, _ = sequential_reference(water600)
        scale = np.abs(ref).max()
        assert np.allclose(f, ref, rtol=1e-9, atol=1e-9 * scale)


class TestPartition:
    def test_balanced_and_contiguous(self):
        costs = np.ones(12)
        bounds = _contiguous_partition(costs, 4)
        assert bounds.tolist() == [0, 3, 6, 9, 12]

    def test_skewed_costs(self):
        costs = np.array([100.0, 1.0, 1.0, 1.0])
        bounds = _contiguous_partition(costs, 2)
        assert bounds[0] == 0 and bounds[-1] == 4
        assert np.all(np.diff(bounds) >= 0)

    def test_zero_costs(self):
        bounds = _contiguous_partition(np.zeros(8), 4)
        assert bounds.tolist() == [0, 2, 4, 6, 8]

    def test_dominant_task_keeps_parts_nonempty(self):
        # all prefix targets land inside the huge last task: the raw cuts
        # collapse onto the end and starve every part but the last
        bounds = _contiguous_partition(np.array([1.0, 1.0, 1.0, 100.0]), 4)
        assert bounds.tolist() == [0, 1, 2, 3, 4]

    def test_leading_zero_costs_do_not_starve_parts(self):
        # searchsorted(side="left") skips past the zero-cost prefix
        bounds = _contiguous_partition(np.array([0.0, 0.0, 0.0, 1.0]), 2)
        assert bounds[0] == 0 and bounds[-1] == 4
        assert np.all(np.diff(bounds) >= 1)

    def test_more_parts_than_tasks(self):
        bounds = _contiguous_partition(np.ones(3), 5)
        assert bounds.tolist() == [0, 1, 2, 3, 3, 3]

    @given(
        costs=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        n_parts=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_partition_properties(self, costs, n_parts):
        costs = np.asarray(costs, dtype=np.float64)
        n_tasks = len(costs)
        bounds = _contiguous_partition(costs, n_parts)
        # shape, monotonicity, full coverage
        assert len(bounds) == n_parts + 1
        assert bounds[0] == 0 and bounds[-1] == n_tasks
        assert np.all(np.diff(bounds) >= 0)
        # no starved part while tasks last
        if n_tasks >= n_parts:
            assert np.all(np.diff(bounds) >= 1)
        else:
            assert np.all(np.diff(bounds)[:n_tasks] == 1)
        part_costs = np.array(
            [costs[bounds[k] : bounds[k + 1]].sum() for k in range(n_parts)]
        )
        total = float(costs.sum())
        assert part_costs.max(initial=0.0) <= total + 1e-9 * max(total, 1.0)
        # 2x-ideal quality bound whenever no single task exceeds the ideal
        ideal = total / n_parts
        if total > 0.0 and float(costs.max()) <= ideal:
            assert part_costs.max() <= 2.0 * ideal + 1e-6 * total

    @given(
        costs=st.lists(
            st.floats(min_value=0.5, max_value=1.0, allow_nan=False),
            min_size=24,
            max_size=48,
        ),
        n_parts=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_quality_near_uniform(self, costs, n_parts):
        # near-uniform costs always satisfy the c_max <= ideal premise, so
        # the 2x-ideal bound is exercised on every example
        costs = np.asarray(costs, dtype=np.float64)
        bounds = _contiguous_partition(costs, n_parts)
        part_costs = np.array(
            [costs[bounds[k] : bounds[k + 1]].sum() for k in range(n_parts)]
        )
        total = float(costs.sum())
        ideal = total / n_parts
        if float(costs.max()) <= ideal:
            assert part_costs.max() <= 2.0 * ideal + 1e-6 * total


class TestPoolFailure:
    def test_timeout_budget_starts_at_dispatch(self, water600):
        # regression: the deadline used to be computed inside collect(),
        # *after* the driver's 1-4 pass silently ate into the budget
        nb = ParallelNonbonded(water600.copy(), OPTS, n_workers=2, timeout=30.0)
        assert nb.active
        try:
            t0 = time.monotonic()
            nb.dispatch()
            assert nb._deadline is not None
            assert nb._deadline <= t0 + 30.0 + 1.0
            nb.collect()
            assert nb._deadline is None
        finally:
            nb.close()

    def test_killed_worker_is_recovered_not_fatal(self, water600):
        # regression for the old one-way cliff: a dead worker used to close
        # the pool and raise; the supervisor now respawns it and the
        # evaluation completes bit-identically on the *live* pool
        nb = ParallelNonbonded(water600.copy(), OPTS, n_workers=2, timeout=60.0)
        try:
            assert nb.active
            first = nb.compute()
            nb._procs[0].terminate()
            nb._procs[0].join(timeout=5.0)
            again = nb.compute()
            assert nb.active  # recovered, not degraded to the fallback
            assert nb._pending is None
            assert nb.resilience.kills_detected == 1
            assert nb.resilience.respawns == 1
            assert nb.resilience.mode == "full"
            assert np.array_equal(again.forces, first.forces)
            assert again.energy_lj == first.energy_lj
            assert again.energy_elec == first.energy_elec
        finally:
            nb.close()

    def test_dead_worker_detected_between_steps(self, water600):
        # liveness is swept at dispatch too, not only inside collect()
        nb = ParallelNonbonded(water600.copy(), OPTS, n_workers=2, timeout=60.0)
        try:
            assert nb.active
            nb.compute()
            nb._procs[1].kill()
            nb._procs[1].join(timeout=5.0)
            nb.compute()
            assert nb.resilience.kills_detected == 1
            assert nb.resilience.respawns == 1
        finally:
            nb.close()

    def test_double_close_is_idempotent(self, water600):
        nb = ParallelNonbonded(water600.copy(), OPTS, n_workers=2, timeout=60.0)
        assert nb.active
        nb.compute()
        nb.close()
        assert not nb.active
        nb.close()  # second close must be a no-op, not an error
        assert not nb.active
        # the evaluator stays usable on the sequential fallback
        res = nb.compute()
        assert np.isfinite(res.energy_lj)

    def test_close_during_dispatch_is_safe(self, water600):
        # close() with a collect() outstanding must drop the pending
        # evaluation so later compute() calls don't trip the pairing guard
        nb = ParallelNonbonded(water600.copy(), OPTS, n_workers=2, timeout=60.0)
        assert nb.active
        nb.dispatch()
        nb.close()
        assert nb._pending is None
        assert not nb.active
        res = nb.compute()  # serves from the sequential fallback
        assert np.isfinite(res.energy_lj)

    def test_teardown_latency_is_bounded(self, water600):
        # a pool with a SIGSTOP'd (unjoinable-by-wait) worker must still
        # close within the overall teardown budget, not 5 s per worker
        import os
        import signal

        if not hasattr(signal, "SIGSTOP"):
            pytest.skip("platform lacks SIGSTOP")
        nb = ParallelNonbonded(water600.copy(), OPTS, n_workers=2, timeout=60.0)
        try:
            assert nb.active
            nb.compute()
            for proc in nb._procs:
                os.kill(proc.pid, signal.SIGSTOP)
            t0 = time.monotonic()
            nb.close()
            elapsed = time.monotonic() - t0
            budget = ParallelNonbonded._TEARDOWN_BUDGET_S
            assert elapsed < budget + 3.0, (
                f"teardown took {elapsed:.1f}s for 2 stopped workers "
                f"(budget {budget:.0f}s overall)"
            )
        finally:
            nb.close()


class NonInPlaceVerlet:
    """Velocity Verlet that hands ``force_fn`` a *fresh* positions array
    instead of mutating the one it was given — the integrator contract's
    other allowed shape (md/engine.py ``force_fn``).  Same arithmetic as
    :class:`repro.md.integrator.VelocityVerlet`."""

    def __init__(self, dt: float = 1.0) -> None:
        self.dt = dt

    def step(self, positions, velocities, forces, masses, force_fn):
        from repro.md.constants import ACC_CONVERSION

        kick = 0.5 * self.dt * ACC_CONVERSION
        v_half = velocities + kick * forces / masses[:, None]
        new_pos = positions + self.dt * v_half
        new_forces = force_fn(new_pos)
        velocities[...] = v_half + kick * new_forces / masses[:, None]
        return new_forces


class TestWrapSemantics:
    def test_construction_does_not_touch_positions(self):
        # parallel-engine construction used to wrap (and rebind) the
        # caller's positions; the sequential engine never did
        s = small_water_box(600, seed=7, relax=False)
        shifted = s.positions + np.asarray(s.box) * np.array([1.0, 0.0, 0.0])
        s.positions = shifted
        snapshot = shifted.copy()
        with ParallelEngine(s, options=OPTS, workers=2) as eng:
            assert eng.parallel
            assert s.positions is shifted
            assert np.array_equal(s.positions, snapshot)

    def test_non_in_place_integrator_matches_sequential(self, water600):
        def run(workers):
            s = water600.copy()
            s.assign_velocities(300.0, seed=5)
            with make_engine(
                s, OPTS, NonInPlaceVerlet(dt=1.0), workers=workers
            ) as eng:
                reports = eng.run(5)
            return s.positions.copy(), reports[-1].total

        p_seq, e_seq = run(1)
        p_par, e_par = run(3)
        assert np.allclose(p_par, p_seq, rtol=1e-9, atol=1e-9)
        assert e_par == pytest.approx(e_seq, rel=1e-9)
