"""MolecularSystem container: validation, energies, velocity assignment."""

import numpy as np
import pytest

from repro.md.constants import BOLTZMANN_KCAL
from repro.md.forcefield import default_forcefield
from repro.md.system import MolecularSystem
from repro.md.topology import Topology


def make_system(n=10, seed=0, box=(20.0, 20.0, 20.0)):
    rng = np.random.default_rng(seed)
    ff = default_forcefield()
    return MolecularSystem(
        positions=rng.random((n, 3)) * np.array(box),
        velocities=np.zeros((n, 3)),
        charges=np.zeros(n),
        type_indices=np.full(n, ff.atom_type_index("OT")),
        topology=Topology(),
        forcefield=ff,
        box=np.array(box),
    )


class TestValidation:
    def test_shape_mismatch_raises(self):
        s = make_system(4)
        with pytest.raises(ValueError):
            MolecularSystem(
                positions=s.positions,
                velocities=np.zeros((3, 3)),
                charges=s.charges,
                type_indices=s.type_indices,
                topology=Topology(),
                forcefield=s.forcefield,
                box=s.box,
            )

    def test_bad_box_raises(self):
        s = make_system(4)
        with pytest.raises(ValueError):
            MolecularSystem(
                positions=s.positions,
                velocities=s.velocities,
                charges=s.charges,
                type_indices=s.type_indices,
                topology=Topology(),
                forcefield=s.forcefield,
                box=np.array([1.0, -1.0, 1.0]),
            )

    def test_unknown_type_index_raises(self):
        s = make_system(4)
        with pytest.raises(ValueError):
            MolecularSystem(
                positions=s.positions,
                velocities=s.velocities,
                charges=s.charges,
                type_indices=np.full(4, 999),
                topology=Topology(),
                forcefield=s.forcefield,
                box=s.box,
            )

    def test_topology_validated(self):
        from repro.md.forcefield import STANDARD_BOND

        topo = Topology()
        topo.add_bond(0, 99, STANDARD_BOND)
        s = make_system(4)
        with pytest.raises(IndexError):
            MolecularSystem(
                positions=s.positions,
                velocities=s.velocities,
                charges=s.charges,
                type_indices=s.type_indices,
                topology=topo,
                forcefield=s.forcefield,
                box=s.box,
            )


class TestEnergetics:
    def test_masses_gathered_from_forcefield(self):
        s = make_system(5)
        np.testing.assert_allclose(s.masses, 15.9994)

    def test_kinetic_energy_zero_at_rest(self):
        assert make_system().kinetic_energy() == 0.0

    def test_velocity_assignment_hits_temperature(self):
        s = make_system(500, seed=3)
        s.assign_velocities(300.0, seed=5)
        assert s.temperature() == pytest.approx(300.0, rel=1e-9)

    def test_velocity_assignment_removes_com_drift(self):
        s = make_system(100, seed=3)
        s.assign_velocities(300.0, seed=5)
        p = (s.masses[:, None] * s.velocities).sum(axis=0)
        np.testing.assert_allclose(p, 0.0, atol=1e-10)

    def test_zero_temperature(self):
        s = make_system(10)
        s.assign_velocities(0.0, seed=1)
        assert s.temperature() == pytest.approx(0.0, abs=1e-12)

    def test_kinetic_matches_equipartition_definition(self):
        s = make_system(64, seed=9)
        s.assign_velocities(250.0, seed=2)
        ke = s.kinetic_energy()
        expected = 1.5 * s.n_atoms * BOLTZMANN_KCAL * s.temperature()
        assert ke == pytest.approx(expected, rel=1e-9)


class TestCopyAndWrap:
    def test_copy_independent_arrays(self):
        s = make_system(4)
        c = s.copy()
        c.positions[0, 0] += 1.0
        assert s.positions[0, 0] != c.positions[0, 0]

    def test_wrap_folds_positions(self):
        s = make_system(4)
        s.positions[0] = [25.0, -3.0, 41.0]
        s.wrap()
        assert np.all(s.positions >= 0.0)
        assert np.all(s.positions < s.box)

    def test_exclusions_cached(self):
        s = make_system(4)
        assert s.exclusions is s.exclusions
        s.invalidate_exclusions()
        assert s.exclusions.n_atoms == 4
