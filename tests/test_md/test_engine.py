"""Sequential engine end-to-end: energy conservation, reports."""

import numpy as np
import pytest

from repro.md.engine import SequentialEngine
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions


class TestEngine:
    def test_report_components_sum(self, water64):
        eng = SequentialEngine(water64.copy(), NonbondedOptions(cutoff=6.0))
        rep = eng.report()
        assert rep.total == pytest.approx(rep.kinetic + rep.potential)
        assert rep.potential == pytest.approx(rep.lj + rep.elec + rep.bonded.total)

    def test_nve_energy_conservation(self, water64):
        system = water64.copy()
        system.assign_velocities(300.0, seed=1)
        eng = SequentialEngine(
            system, NonbondedOptions(cutoff=5.0, switch_dist=4.0), VelocityVerlet(dt=0.5)
        )
        first = eng.step()
        reports = eng.run(40)
        e0 = first.total
        for rep in reports:
            assert abs(rep.total - e0) / abs(e0) < 5e-3

    def test_step_counter_advances(self, water64):
        eng = SequentialEngine(water64.copy(), NonbondedOptions(cutoff=6.0))
        assert eng.current_step == 0
        eng.run(3)
        assert eng.current_step == 3
        assert eng.report().step == 3

    def test_forces_change_positions(self, water64):
        system = water64.copy()
        system.assign_velocities(300.0, seed=1)
        before = system.positions.copy()
        SequentialEngine(system, NonbondedOptions(cutoff=6.0)).step()
        assert not np.allclose(before, system.positions)

    def test_cold_start_stays_cold_briefly(self, water64):
        """At v=0 and near-minimum, kinetic energy stays small initially."""
        system = water64.copy()
        system.velocities[:] = 0.0
        eng = SequentialEngine(system, NonbondedOptions(cutoff=6.0), VelocityVerlet(dt=0.2))
        rep = eng.step()
        assert rep.kinetic < 50.0

    def test_vacuum_peptide_runs(self, peptide):
        system = peptide.copy()
        system.assign_velocities(10.0, seed=0)
        eng = SequentialEngine(system, NonbondedOptions(cutoff=10.0), VelocityVerlet(dt=0.25))
        reports = eng.run(10)
        assert len(reports) == 10
        assert np.isfinite(reports[-1].total)
