"""Sequential engine end-to-end: energy conservation, reports."""

import numpy as np
import pytest

from repro.md.engine import SequentialEngine
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions


class TestEngine:
    def test_report_components_sum(self, water64):
        eng = SequentialEngine(water64.copy(), NonbondedOptions(cutoff=6.0))
        rep = eng.report()
        assert rep.total == pytest.approx(rep.kinetic + rep.potential)
        assert rep.potential == pytest.approx(rep.lj + rep.elec + rep.bonded.total)

    def test_nve_energy_conservation(self, water64):
        system = water64.copy()
        system.assign_velocities(300.0, seed=1)
        eng = SequentialEngine(
            system, NonbondedOptions(cutoff=5.0, switch_dist=4.0), VelocityVerlet(dt=0.5)
        )
        first = eng.step()
        reports = eng.run(40)
        e0 = first.total
        for rep in reports:
            assert abs(rep.total - e0) / abs(e0) < 5e-3

    def test_step_counter_advances(self, water64):
        eng = SequentialEngine(water64.copy(), NonbondedOptions(cutoff=6.0))
        assert eng.current_step == 0
        eng.run(3)
        assert eng.current_step == 3
        assert eng.report().step == 3

    def test_forces_change_positions(self, water64):
        system = water64.copy()
        system.assign_velocities(300.0, seed=1)
        before = system.positions.copy()
        SequentialEngine(system, NonbondedOptions(cutoff=6.0)).step()
        assert not np.allclose(before, system.positions)

    def test_cold_start_stays_cold_briefly(self, water64):
        """At v=0 and near-minimum, kinetic energy stays small initially."""
        system = water64.copy()
        system.velocities[:] = 0.0
        eng = SequentialEngine(system, NonbondedOptions(cutoff=6.0), VelocityVerlet(dt=0.2))
        rep = eng.step()
        assert rep.kinetic < 50.0

    def test_vacuum_peptide_runs(self, peptide):
        system = peptide.copy()
        system.assign_velocities(10.0, seed=0)
        eng = SequentialEngine(system, NonbondedOptions(cutoff=10.0), VelocityVerlet(dt=0.25))
        reports = eng.run(10)
        assert len(reports) == 10
        assert np.isfinite(reports[-1].total)

    def test_pairlist_default_and_opt_out(self, water64):
        from repro.md.pairlist import VerletPairList

        auto = SequentialEngine(water64.copy(), NonbondedOptions(cutoff=6.0))
        assert isinstance(auto.pairlist, VerletPairList)
        assert auto.pairlist.cutoff == 6.0
        off = SequentialEngine(
            water64.copy(), NonbondedOptions(cutoff=6.0), pairlist=None
        )
        assert off.pairlist is None
        with pytest.raises(ValueError):
            SequentialEngine(water64.copy(), pairlist="bogus")


class CopyingVerlet(VelocityVerlet):
    """Velocity Verlet that drifts into a *fresh* array.

    ``force_fn`` receives an array that does not alias the engine's
    ``system.positions`` — the regression case for the engine's former
    habit of ignoring the positions argument entirely.
    """

    def step(self, positions, velocities, forces_old, masses, force_fn):
        self.half_kick(velocities, forces_old, masses)
        new_positions = positions + self.dt * velocities  # fresh array
        forces_new = force_fn(new_positions)
        self.half_kick(velocities, forces_new, masses)
        return forces_new


class TestForceFnHonorsPositions:
    def test_non_inplace_integrator_matches_inplace(self, water64):
        a = water64.copy()
        a.assign_velocities(300.0, seed=2)
        b = a.copy()
        opts = NonbondedOptions(cutoff=5.0, switch_dist=4.0)
        e_ref = SequentialEngine(a, opts, VelocityVerlet(dt=0.5), pairlist=None)
        e_copy = SequentialEngine(b, opts, CopyingVerlet(dt=0.5), pairlist=None)
        for _ in range(5):
            r_ref = e_ref.step()
            r_copy = e_copy.step()
            assert r_copy.total == pytest.approx(r_ref.total, rel=1e-9)
        np.testing.assert_allclose(a.positions, b.positions, atol=1e-9)
