"""Grainsize control on the real parallel engine (paper §4.2.1–2).

The split invariants that make sub-tasks safe to schedule: each parent
task's candidate pair set is *exactly* partitioned by its slices (the
pair-set-match check in the style of benchmarks/test_kernel_hotpath.py),
the split engine agrees with the sequential engine to 1e-9 and stays
bit-identical across repeat runs — including runs that remap tasks — and
the WorkDB receives sub-task identities with pro-rata priors.
"""

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.core.decomposition import bin_atoms
from repro.instrument import WorkDB
from repro.md.cells import CellGrid
from repro.md.engine import SequentialEngine
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import (
    HAS_SHARED_MEMORY,
    ParallelEngine,
    ParallelNonbonded,
    _build_task_lists,
    _scratch_rows_bound,
    _task_layout,
)

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="platform lacks multiprocessing.shared_memory"
)

OPTS = NonbondedOptions(cutoff=8.0)
SKIN = 1.5


@pytest.fixture(scope="module")
def water600():
    return small_water_box(600, seed=7, relax=False)


@pytest.fixture(scope="module")
def binned(water600):
    """Wrapped copy of the box with its grid, buckets, and parent tasks."""
    system = water600.copy()
    system.wrap()
    r_list = OPTS.cutoff + SKIN
    grid = CellGrid.build(system.positions, system.box, r_list)
    ca, cb = grid.neighbor_cell_pair_arrays()
    parents = list(zip(ca.tolist(), cb.tolist()))
    _, _, buckets = bin_atoms(system.positions, system.box, grid.dims)
    return system, parents, buckets, r_list


def _pair_keys(i: np.ndarray, j: np.ndarray, n: int) -> np.ndarray:
    """Order-independent pair identity (same harness as the hotpath bench)."""
    lo = np.minimum(i, j).astype(np.int64)
    hi = np.maximum(i, j).astype(np.int64)
    return np.sort(lo * n + hi)


def _keys_of(lists, tasks, n):
    keys = []
    for t in range(len(tasks)):
        entry = lists.get(t)
        if entry is None:
            continue
        i_f, j_f = entry[0], entry[1]
        keys.append(_pair_keys(i_f, j_f, n))
    return np.sort(np.concatenate(keys)) if keys else np.zeros(0, dtype=np.int64)


class TestPairSetPartition:
    @pytest.mark.parametrize("n_parts", [2, 3, 5, 16])
    def test_subtask_pairs_exactly_partition_parent(self, binned, n_parts):
        system, parents, buckets, r_list = binned
        n = system.n_atoms
        for a, b in parents:
            parent = [(a, b, 0, 1)]
            parent_lists = _build_task_lists(system, parent, [0], buckets, r_list)
            parent_keys = _keys_of(parent_lists, parent, n)

            subs = [(a, b, p, n_parts) for p in range(n_parts)]
            sub_lists = _build_task_lists(
                system, subs, list(range(n_parts)), buckets, r_list
            )
            sub_keys = _keys_of(sub_lists, subs, n)
            assert np.array_equal(sub_keys, parent_keys), (
                f"task ({a},{b}) split {n_parts} ways lost or duplicated pairs"
            )

    def test_unsplit_tuple_reproduces_legacy_arrays(self, binned):
        # (a, b, 0, 1) must be byte-for-byte the pre-grainsize task: same
        # candidate order, same local scatter indices
        system, parents, buckets, r_list = binned
        for a, b in parents[:4]:
            lists = _build_task_lists(
                system, [(a, b, 0, 1)], [0], buckets, r_list
            )
            entry = lists[0]
            if entry is None:
                continue
            i_f, j_f, si, sj = entry[0], entry[1], entry[2], entry[3]
            na = len(buckets[a])
            if a == b:
                ti, tj = np.triu_indices(na, k=1)
                keep = np.isin(
                    ti * na + tj, si * na + sj, assume_unique=False
                )
                assert np.array_equal(si, ti[keep])
                assert np.array_equal(sj, tj[keep])
            else:
                assert np.all(si < na)
                assert np.all(sj >= na)

    def test_layout_blocks_cover_kernel_rows(self, binned):
        # every local scatter index of every sub-task must fall inside the
        # sub-task's block, and the block's gather rows must name the atoms
        # the kernel writes
        system, parents, buckets, r_list = binned
        for n_parts in (1, 3):
            tasks = [
                (a, b, p, n_parts) for a, b in parents for p in range(n_parts)
            ]
            offsets, gather = _task_layout(buckets, tasks)
            lists = _build_task_lists(
                system, tasks, list(range(len(tasks))), buckets, r_list
            )
            for t, task in enumerate(tasks):
                entry = lists.get(t)
                if entry is None:
                    continue
                i_f, j_f, si, sj = entry[0], entry[1], entry[2], entry[3]
                block_rows = gather[offsets[t] : offsets[t + 1]]
                size = len(block_rows)
                assert si.max(initial=-1) < size
                assert sj.max(initial=-1) < size
                # local row -> global atom mapping is consistent
                assert np.array_equal(block_rows[si], i_f.astype(np.int64))
                assert np.array_equal(block_rows[sj], j_f.astype(np.int64))

    def test_scratch_bound_covers_layout(self, binned):
        system, parents, buckets, _ = binned
        n_cells = max(max(a, b) for a, b in parents) + 1
        for n_parts in (1, 2, 4):
            tasks = [
                (a, b, p, n_parts) for a, b in parents for p in range(n_parts)
            ]
            offsets, _ = _task_layout(buckets, tasks)
            bound = _scratch_rows_bound(tasks, n_cells, system.n_atoms)
            assert int(offsets[-1]) <= bound


class TestSplitEngine:
    def test_split_forces_match_sequential(self, water600):
        ref_eng = SequentialEngine(water600.copy(), OPTS, pairlist=None)
        f_ref = ref_eng.compute_forces()
        sys_par = water600.copy()
        with ParallelEngine(
            sys_par, options=OPTS, workers=3, grainsize_ms=1.0
        ) as eng:
            assert eng.parallel
            rep = eng._nb.split_report()
            assert rep["n_subtasks"] > rep["n_parent_tasks"] > 0
            f_par = eng.compute_forces()
        scale = np.abs(f_ref).max()
        assert np.allclose(f_par, f_ref, rtol=1e-9, atol=1e-9 * scale)

    def test_split_repeat_runs_bit_identical(self, water600):
        trajectories = []
        for _run in range(2):
            s = water600.copy()
            s.assign_velocities(300.0, seed=13)
            with ParallelEngine(
                s, options=OPTS, workers=3, grainsize_ms=1.0
            ) as eng:
                assert eng.parallel
                reports = eng.run(4)
            trajectories.append((s.positions.copy(), reports[-1].total))
        (p0, e0), (p1, e1) = trajectories
        assert np.array_equal(p0, p1)
        assert e0 == e1

    def test_split_determinism_across_remaps(self, water600):
        # rebalancing with noisy measured times must not perturb the
        # trajectory even when sub-tasks migrate between workers
        def run():
            s = water600.copy()
            s.assign_velocities(300.0, seed=3)
            with ParallelEngine(
                s,
                options=OPTS,
                workers=2,
                grainsize_ms=1.0,
                rebalance_every=2,
                slowdown={0: 3.0},
            ) as eng:
                assert eng.parallel
                reports = eng.run(6)
                assert eng._nb.n_rebalances >= 1
            return s.positions.copy(), reports[-1].total, eng.remap_steps

        p0, e0, remaps0 = run()
        p1, e1, remaps1 = run()
        assert np.array_equal(p0, p1)
        assert e0 == e1
        assert remaps0 == remaps1

    def test_split_enables_pool_on_single_cell_box(self):
        # a box with one task cell used to force the sequential fallback;
        # splitting turns the lone self task into schedulable slices
        s = small_water_box(200, seed=7, relax=False)
        ref = SequentialEngine(s.copy(), OPTS, pairlist=None).compute_forces()
        with ParallelEngine(s, options=OPTS, workers=3, grainsize_ms=1.0) as eng:
            assert eng.parallel
            f = eng.compute_forces()
        scale = np.abs(ref).max()
        assert np.allclose(f, ref, rtol=1e-9, atol=1e-9 * scale)

    def test_grainsize_validation(self, water600):
        with pytest.raises(ValueError, match="grainsize_ms"):
            ParallelNonbonded(water600.copy(), OPTS, n_workers=2, grainsize_ms=-1.0)


class TestWorkDBHandoff:
    def test_subtask_priors_pro_rata(self, water600):
        nb = ParallelNonbonded(
            water600.copy(), OPTS, n_workers=2, grainsize_ms=1.0
        )
        try:
            assert nb.active
            db = nb.workdb
            assert len(db.tasks) == nb.n_subtasks
            by_parent: dict[int, list] = {}
            for rec in db.tasks.values():
                assert rec.parent >= 0
                by_parent.setdefault(rec.parent, []).append(rec)
            assert len(by_parent) == nb.n_parent_tasks
            split_seen = False
            for recs in by_parent.values():
                n_parts = recs[0].n_parts
                assert all(r.n_parts == n_parts for r in recs)
                assert sorted(r.part for r in recs) == list(range(n_parts))
                if n_parts > 1:
                    split_seen = True
                    total = sum(r.prior for r in recs)
                    # slices inherit the parent's prior pro-rata: the sum is
                    # conserved and every slice gets a positive share
                    assert total > 0
                    assert all(r.prior >= 0 for r in recs)
                    assert max(r.prior for r in recs) <= total
            assert split_seen, "grainsize_ms=1.0 split nothing on this box"
        finally:
            nb.close()

    def test_measurements_accumulate_per_subtask(self, water600):
        nb = ParallelNonbonded(
            water600.copy(), OPTS, n_workers=2, grainsize_ms=1.0
        )
        try:
            assert nb.active
            nb.compute()
            nb.compute()
            measured = [r for r in nb.workdb.tasks.values() if r.n_samples > 0]
            assert len(measured) == nb.n_subtasks
            assert all(r.n_samples == 2 for r in measured)
        finally:
            nb.close()

    def test_serialization_round_trip_keeps_subtask_identity(self):
        db = WorkDB()
        db.ensure_task(0, (0,), prior=2.0, owner=0, parent=0, part=0, n_parts=2)
        db.ensure_task(1, (0,), prior=1.0, owner=1, parent=0, part=1, n_parts=2)
        db.record(0, 0.5)
        clone = WorkDB.from_dict(db.to_dict())
        assert clone.tasks[0].parent == 0
        assert clone.tasks[0].n_parts == 2
        assert clone.tasks[1].part == 1
        # pre-grainsize dumps (no parent/part keys) still load
        legacy = db.to_dict()
        for t in legacy["tasks"]:
            del t["parent"], t["part"], t["n_parts"]
        old = WorkDB.from_dict(legacy)
        assert old.tasks[0].parent == -1
        assert old.tasks[0].n_parts == 1


class TestAnalysisBridge:
    def test_histogram_from_workdb(self, water600):
        from repro.analysis import histogram_from_workdb

        nb = ParallelNonbonded(
            water600.copy(), OPTS, n_workers=2, grainsize_ms=1.0
        )
        try:
            assert nb.active
            for _ in range(3):
                nb.compute()
            hist = histogram_from_workdb(nb.workdb, bin_ms=0.5)
            assert hist.total_tasks == nb.n_subtasks
            assert float(hist.counts.sum()) == pytest.approx(nb.n_subtasks)
            assert hist.max_grainsize_ms > 0
        finally:
            nb.close()
