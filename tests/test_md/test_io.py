"""System I/O: PDB export and JSON round trip."""

import numpy as np
import pytest

from repro.md.io import load_system, save_system, write_pdb
from repro.md.nonbonded import NonbondedOptions, compute_nonbonded


class TestPDB:
    def test_writes_standard_records(self, water64, tmp_path):
        path = tmp_path / "w.pdb"
        write_pdb(water64, path)
        text = path.read_text()
        lines = text.splitlines()
        assert lines[0].startswith("CRYST1")
        atoms = [l for l in lines if l.startswith("ATOM")]
        assert len(atoms) == water64.n_atoms
        assert lines[-1] == "END"

    def test_coordinates_in_fixed_columns(self, water64, tmp_path):
        path = tmp_path / "w.pdb"
        write_pdb(water64, path)
        atom_line = next(
            l for l in path.read_text().splitlines() if l.startswith("ATOM")
        )
        x = float(atom_line[30:38])
        assert x == pytest.approx(water64.positions[0, 0], abs=5e-4)

    def test_elements_assigned(self, peptide, tmp_path):
        path = tmp_path / "p.pdb"
        write_pdb(peptide, path)
        elements = {
            l[76:78].strip() for l in path.read_text().splitlines()
            if l.startswith("ATOM")
        }
        assert {"C", "N", "O", "H"} <= elements


class TestJSONRoundTrip:
    def test_arrays_preserved(self, peptide, tmp_path):
        path = tmp_path / "sys.json"
        save_system(peptide, path)
        loaded = load_system(path)
        np.testing.assert_allclose(loaded.positions, peptide.positions)
        np.testing.assert_allclose(loaded.charges, peptide.charges)
        np.testing.assert_array_equal(loaded.type_indices, peptide.type_indices)
        np.testing.assert_allclose(loaded.box, peptide.box)
        assert loaded.segment_labels == peptide.segment_labels

    def test_topology_preserved(self, peptide, tmp_path):
        path = tmp_path / "sys.json"
        save_system(peptide, path)
        loaded = load_system(path)
        t1, t2 = peptide.topology, loaded.topology
        assert (t1.n_bonds, t1.n_angles, t1.n_dihedrals, t1.n_impropers) == (
            t2.n_bonds, t2.n_angles, t2.n_dihedrals, t2.n_impropers
        )
        np.testing.assert_array_equal(t1.bond_arrays()[0], t2.bond_arrays()[0])

    def test_energies_identical_after_roundtrip(self, water64, tmp_path):
        path = tmp_path / "sys.json"
        save_system(water64, path)
        loaded = load_system(path)
        opts = NonbondedOptions(cutoff=6.0)
        e1 = compute_nonbonded(water64.copy(), opts).energy
        e2 = compute_nonbonded(loaded, opts).energy
        assert e2 == pytest.approx(e1, rel=1e-12)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            load_system(path)
