"""Distributed bonded and Ewald k-space force tasks.

The generalized force-task protocol moves bonded term groups and the Ewald
reciprocal sum onto the worker pool.  Coverage here: cross-engine agreement
with full electrostatics at several worker counts (1e-9 vs the sequential
engine), bit-identical repeats and worker-count invariance, bit-identical
recovery after a mid-run worker kill (respawn and reassignment rungs), and
bit-identical resume from a run checkpoint — plus unit tests for the task
decomposition helpers and the ``make_engine`` keyword normalization.
"""

import warnings

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.md.bonded import BONDED_KINDS, bonded_term_arrays
from repro.md.engine import SequentialEngine, make_engine
from repro.md.ewald import EwaldOptions, _kspace_tables, compute_ewald
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import (
    HAS_SHARED_MEMORY,
    ParallelEngine,
    _kspace_shards,
    _xtask_rows,
)
from repro.md.resilience import RecoveryPolicy

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="platform lacks multiprocessing.shared_memory"
)

OPTS = NonbondedOptions(cutoff=6.0)
EWALD = EwaldOptions(cutoff=6.0, kmax=4)


def fresh_water(n=64, seed=3):
    s = small_water_box(n, seed=seed, relax=False)
    s.assign_velocities(300.0, seed=5)
    return s


def run_trajectory(engine, n_steps=3):
    with engine:
        reports = engine.run(n_steps)
    return engine.system.positions.copy(), reports[-1]


class TestCrossEngineAgreement:
    """Distributed bonded + k-space vs the sequential engine at 1e-9."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_forces_and_energies_with_ewald(self, workers):
        base = fresh_water()
        seq = SequentialEngine(base.copy(), OPTS, pairlist=None, ewald=EWALD)
        f_ref = seq.compute_forces()
        rep_ref = seq.report()

        with ParallelEngine(
            base.copy(), OPTS, workers=workers, ewald=EWALD, distribute=True
        ) as eng:
            assert eng.parallel
            f_par = eng.compute_forces()
            rep_par = eng.report()
        scale = np.abs(f_ref).max()
        assert np.allclose(f_par, f_ref, rtol=1e-9, atol=1e-9 * scale)
        assert rep_par.lj == pytest.approx(rep_ref.lj, rel=1e-9)
        assert rep_par.elec == pytest.approx(rep_ref.elec, rel=1e-9)
        assert rep_par.bonded.total == pytest.approx(
            rep_ref.bonded.total, rel=1e-9
        )

    def test_all_bonded_kinds_on_the_assembly(self, assembly):
        """Dihedrals and impropers (present in the protein) distribute too."""
        opts = NonbondedOptions(cutoff=8.0)
        seq = SequentialEngine(assembly.copy(), opts, pairlist=None)
        f_ref = seq.compute_forces()
        rep_ref = seq.report()
        assert rep_ref.bonded.dihedral != 0.0  # the case exercises them

        with ParallelEngine(
            assembly.copy(), opts, workers=3, distribute=True
        ) as eng:
            assert eng.parallel
            f_par = eng.compute_forces()
            rep_par = eng.report()
        scale = np.abs(f_ref).max()
        assert np.allclose(f_par, f_ref, rtol=1e-9, atol=1e-9 * scale)
        for name in ("bond", "angle", "dihedral", "improper"):
            assert getattr(rep_par.bonded, name) == pytest.approx(
                getattr(rep_ref.bonded, name), rel=1e-9, abs=1e-12
            )

    def test_trajectory_tracks_sequential(self):
        p_seq, r_seq = run_trajectory(
            SequentialEngine(fresh_water(), OPTS, pairlist=None, ewald=EWALD)
        )
        p_par, r_par = run_trajectory(
            ParallelEngine(
                fresh_water(), OPTS, workers=2, skin=0.0,
                ewald=EWALD, distribute=True,
            )
        )
        assert np.allclose(p_par, p_seq, rtol=0, atol=1e-9)
        assert r_par.total == pytest.approx(r_seq.total, rel=1e-9)

    def test_ewald_without_distribution_also_agrees(self):
        """distribute=False keeps the full Ewald sum on the driver."""
        p_seq, r_seq = run_trajectory(
            SequentialEngine(fresh_water(), OPTS, pairlist=None, ewald=EWALD)
        )
        p_par, r_par = run_trajectory(
            ParallelEngine(
                fresh_water(), OPTS, workers=2, skin=0.0,
                ewald=EWALD, distribute=False,
            )
        )
        assert np.allclose(p_par, p_seq, rtol=0, atol=1e-9)
        assert r_par.total == pytest.approx(r_seq.total, rel=1e-9)


class TestDeterminism:
    def _run(self, **kw):
        eng = ParallelEngine(
            fresh_water(), OPTS, ewald=EWALD, distribute=True, **kw
        )
        return run_trajectory(eng, n_steps=4)[0]

    def test_repeats_are_bit_identical(self):
        a = self._run(workers=2)
        b = self._run(workers=2)
        np.testing.assert_array_equal(a, b)

    def test_worker_count_does_not_change_bits(self):
        """Task structure derives from topology/grid/kmax only, so the
        task-ordered reduction gives identical bits at any pool size."""
        a = self._run(workers=2)
        b = self._run(workers=3)
        c = self._run(workers=4)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, c)

    def test_rebalance_remaps_do_not_change_bits(self):
        a = self._run(workers=3)
        b = self._run(workers=3, rebalance_every=2)
        np.testing.assert_array_equal(a, b)


class TestRecovery:
    def _run(self, **kw):
        eng = ParallelEngine(
            fresh_water(), OPTS, workers=3, ewald=EWALD, distribute=True, **kw
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            pos, _ = run_trajectory(eng, n_steps=5)
        return pos, eng.resilience

    def test_respawn_after_kill_is_bit_identical(self):
        clean, _ = self._run()
        faulted, res = self._run(fault_plan="kill=1@2")
        assert res.respawns >= 1
        np.testing.assert_array_equal(faulted, clean)

    def test_reassignment_after_kill_is_bit_identical(self):
        """With respawn disabled, orphaned cell/bonded/kspace tasks are
        redistributed to survivors and the trajectory keeps its bits."""
        clean, _ = self._run()
        faulted, res = self._run(
            fault_plan="kill=1@2", recovery=RecoveryPolicy(max_respawns=0)
        )
        assert res.tasks_reassigned >= 1
        assert sum(res.reassigned_by_kind.values()) == res.tasks_reassigned
        assert set(res.reassigned_by_kind) <= {"cell", "bonded", "kspace"}
        assert "reassigned_by_kind" in res.to_dict()
        np.testing.assert_array_equal(faulted, clean)


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, tmp_path):
        from repro.runtime.checkpoint import (
            load_run_checkpoint,
            restore_run_checkpoint,
        )

        path = tmp_path / "dist.ckpt"
        s_a = fresh_water()
        with ParallelEngine(
            s_a, OPTS, workers=2, ewald=EWALD, distribute=True,
            checkpoint_every=3, checkpoint_path=path,
        ) as eng:
            for _ in range(5):
                rep_a = eng.step()
            assert eng.n_checkpoints == 1

        cp = load_run_checkpoint(path)
        assert cp.step == 3
        s_b = fresh_water()
        with ParallelEngine(
            s_b, OPTS, workers=2, ewald=EWALD, distribute=True
        ) as eng:
            restore_run_checkpoint(eng, cp)
            for _ in range(2):
                rep_b = eng.step()
        np.testing.assert_array_equal(s_b.positions, s_a.positions)
        np.testing.assert_array_equal(s_b.velocities, s_a.velocities)
        assert rep_b.total == rep_a.total


class TestTaskDecomposition:
    """Unit coverage for the shard and bonded-group helpers."""

    def test_kspace_shards_cover_exactly(self):
        for nk in (0, 1, 511, 512, 513, 4096, 100000):
            shards = _kspace_shards(nk)
            if nk == 0:
                assert shards == []
                continue
            assert shards[0][1] == 0 and shards[-1][2] == nk
            for (_, lo, hi), (_, lo2, _hi2) in zip(shards, shards[1:]):
                assert hi == lo2
            assert all(hi > lo for _, lo, hi in shards)
            assert len(shards) <= 8

    def test_shard_sum_matches_full_reciprocal(self):
        from repro.backend import get_backend
        from repro.md.constants import COULOMB_CONSTANT

        s = fresh_water()
        be = get_backend("numpy")
        alpha = EWALD.alpha_value()
        k_tab, _k2, ak = _kspace_tables(s.box, EWALD.kmax, alpha)
        pref = COULOMB_CONSTANT * 2.0 * np.pi / float(np.prod(s.box))

        f_full = np.zeros((s.n_atoms, 3))
        e_full = be.ewald_recip(s.positions, s.charges, k_tab, ak, pref, f_full)

        e_sum, f_sum = 0.0, np.zeros((s.n_atoms, 3))
        for _, lo, hi in _kspace_shards(len(k_tab)):
            block = np.zeros((s.n_atoms, 3))
            e_sum += be.ewald_recip_shard(
                s.positions, s.charges, k_tab[lo:hi], ak[lo:hi], pref, block
            )
            f_sum += block
        assert e_sum == pytest.approx(e_full, rel=1e-12)
        assert np.allclose(f_sum, f_full, rtol=1e-12, atol=1e-12)

    def test_bonded_groups_partition_every_term(self):
        """(kind, cell, intra) groups are disjoint and exhaustive under any
        atom->cell map, so no term is dropped or double-counted."""
        s = fresh_water()
        rng = np.random.default_rng(0)
        n_cells = 8
        flat = rng.integers(0, n_cells, s.n_atoms).astype(np.int64)
        term_data = {
            kind: bonded_term_arrays(s, kind)
            for kind in range(len(BONDED_KINDS))
            if len(bonded_term_arrays(s, kind)[0])
        }
        for kind, (idx, *_rest) in term_data.items():
            xtasks = [
                ("bonded", kind, cell, intra)
                for cell in range(n_cells)
                for intra in (1, 0)
            ]
            sels, _rows = _xtask_rows(xtasks, term_data, flat, s.n_atoms)
            combined = np.concatenate([sel for sel in sels])
            assert len(combined) == len(idx)
            np.testing.assert_array_equal(np.sort(combined), np.arange(len(idx)))

    def test_kspace_rows_span_all_atoms(self):
        s = fresh_water()
        sels, rows = _xtask_rows(
            [("kspace", 0, 10)], {}, np.zeros(s.n_atoms, np.int64), s.n_atoms
        )
        assert sels == [None]
        np.testing.assert_array_equal(rows[0], np.arange(s.n_atoms))


class TestEngineFactory:
    """make_engine keyword normalization (no silently dropped kwargs)."""

    def test_sequential_honours_skin(self):
        s = fresh_water()
        eng = make_engine(s, OPTS, workers=1, skin=2.5)
        assert eng.pairlist is not None and eng.pairlist.skin == 2.5
        eng = make_engine(s, OPTS, workers=1, skin=0.0)
        assert eng.pairlist is None

    def test_sequential_accepts_checkpoint_kwargs(self, tmp_path):
        s = fresh_water()
        path = tmp_path / "seq.ckpt"
        eng = make_engine(
            s, OPTS, workers=1, checkpoint_every=2, checkpoint_path=path
        )
        assert eng.checkpoint_every == 2 and eng.checkpoint_path == path

    def test_sequential_rejects_parallel_only_kwargs(self):
        s = fresh_water()
        with pytest.raises(TypeError, match="timeout"):
            make_engine(s, OPTS, workers=1, timeout=5.0)
        with pytest.raises(TypeError, match="distribute"):
            make_engine(s, OPTS, workers=1, distribute=True)

    def test_ewald_accepted_on_both_paths(self):
        seq = make_engine(fresh_water(), OPTS, workers=1, ewald=EWALD)
        assert isinstance(seq, SequentialEngine) and seq.ewald is EWALD
        with make_engine(
            fresh_water(), OPTS, workers=2, ewald=EWALD, distribute=True
        ) as par:
            assert isinstance(par, ParallelEngine)
            assert par.ewald is EWALD and par.distribute

    def test_constructor_parity_across_engines(self):
        """Every engine entry point accepts the shared configuration
        surface (options, backend, ewald) without engine-specific spelling."""
        from repro.md.mts import MTSEngine

        shared = dict(options=OPTS, backend="numpy", ewald=EWALD)
        s = fresh_water()
        seq = SequentialEngine(s.copy(), **{
            "options" if k == "options" else k: v for k, v in shared.items()
        })
        assert seq.ewald is EWALD
        mts = MTSEngine(s.copy(), **shared)
        assert mts.ewald is EWALD
        with ParallelEngine(s.copy(), workers=2, **shared) as par:
            assert par.ewald is EWALD


class TestMTSEwald:
    def test_slow_component_includes_full_ewald(self):
        from repro.md.mts import MTSEngine

        s = fresh_water()
        ref = compute_ewald(s.copy(), EWALD).energy
        eng = MTSEngine(s, options=OPTS, ewald=EWALD, n_inner=2)
        e_lj, e_el, _f = eng._slow()
        assert e_el == pytest.approx(ref, rel=1e-9)

    def test_external_evaluator_wins_over_ewald(self):
        from repro.md.mts import MTSEngine

        class Dummy:
            def compute(self):  # pragma: no cover - never called here
                raise AssertionError

        eng = MTSEngine(fresh_water(), nonbonded=Dummy(), ewald=EWALD)
        assert eng.ewald is None


class TestDriverShareInstrumentation:
    def test_driver_report_accumulates(self):
        with ParallelEngine(
            fresh_water(), OPTS, workers=2, ewald=EWALD, distribute=True
        ) as eng:
            eng.run(2)
            rep = eng.driver_report()
        assert rep["n_evals"] >= 2
        assert 0.0 <= rep["driver_share"] <= 1.0
        assert rep["wall_s"] > 0.0

    def test_kspace_cache_stats_aggregate_workers(self):
        with ParallelEngine(
            fresh_water(), OPTS, workers=2, ewald=EWALD, distribute=True
        ) as eng:
            eng.run(2)
            stats = eng.kspace_cache_stats()
            total = (
                stats["driver"]["builds"] + stats["driver"]["hits"]
                + stats["worker_builds"] + stats["worker_hits"]
            )
            assert total > 0
            assert set(stats["workers"]) == set(range(eng.workers))
            eng.clear_kspace_cache()
            cleared = eng.kspace_cache_stats()
            assert cleared["worker_builds"] == 0
            assert cleared["worker_hits"] == 0
