"""SHAKE/RATTLE constraints: convergence, exactness, rigid-water dynamics."""

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.md.constraints import ConstraintSolver, water_constraints


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ConstraintSolver(np.array([[0, 1]]), np.array([1.0, 2.0]))

    def test_nonpositive_distance(self):
        with pytest.raises(ValueError):
            ConstraintSolver(np.array([[0, 1]]), np.array([0.0]))


class TestShake:
    def test_single_pair_exact(self):
        box = np.array([50.0, 50.0, 50.0])
        pos = np.array([[0.0, 0.0, 0.0], [1.3, 0.0, 0.0]])
        masses = np.array([16.0, 1.0])
        solver = ConstraintSolver(np.array([[0, 1]]), np.array([1.0]))
        solver.shake(pos, masses, box)
        assert np.linalg.norm(pos[1] - pos[0]) == pytest.approx(1.0, rel=1e-7)

    def test_mass_weighting(self):
        """The heavy atom moves (much) less."""
        box = np.array([50.0, 50.0, 50.0])
        pos = np.array([[0.0, 0.0, 0.0], [1.5, 0.0, 0.0]])
        p0 = pos.copy()
        masses = np.array([100.0, 1.0])
        ConstraintSolver(np.array([[0, 1]]), np.array([1.0])).shake(pos, masses, box)
        moved = np.linalg.norm(pos - p0, axis=1)
        assert moved[0] < 0.05 * moved[1]

    def test_center_of_mass_preserved(self):
        box = np.array([50.0, 50.0, 50.0])
        rng = np.random.default_rng(0)
        pos = rng.random((3, 3)) * 3 + 20
        masses = np.array([16.0, 1.0, 1.0])
        com0 = masses @ pos / masses.sum()
        solver = ConstraintSolver(
            np.array([[0, 1], [0, 2], [1, 2]]), np.array([1.0, 1.0, 1.6])
        )
        solver.shake(pos, masses, box)
        com1 = masses @ pos / masses.sum()
        np.testing.assert_allclose(com1, com0, atol=1e-9)

    def test_triangle_converges(self):
        box = np.array([50.0, 50.0, 50.0])
        pos = np.array([[0.0, 0.0, 0.0], [1.2, 0.1, 0.0], [-0.2, 1.1, 0.0]])
        masses = np.array([16.0, 1.0, 1.0])
        solver = ConstraintSolver(
            np.array([[0, 1], [0, 2], [1, 2]]),
            np.array([0.9572, 0.9572, 1.5139]),
        )
        solver.shake(pos, masses, box)
        assert solver.max_violation(pos, box) < 1e-6

    def test_pbc_constraint_across_boundary(self):
        box = np.array([10.0, 10.0, 10.0])
        pos = np.array([[0.2, 0.0, 0.0], [9.9, 0.0, 0.0]])  # true dist 0.3
        masses = np.ones(2)
        ConstraintSolver(np.array([[0, 1]]), np.array([0.5])).shake(pos, masses, box)
        from repro.util.pbc import minimum_image

        d = np.linalg.norm(minimum_image(pos[1] - pos[0], box))
        assert d == pytest.approx(0.5, rel=1e-6)


class TestRattle:
    def test_removes_radial_velocity(self):
        box = np.array([50.0, 50.0, 50.0])
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        vel = np.array([[0.0, 0.0, 0.0], [0.3, 0.2, 0.0]])
        masses = np.ones(2)
        solver = ConstraintSolver(np.array([[0, 1]]), np.array([1.0]))
        solver.rattle(pos, vel, masses, box)
        vrel = vel[1] - vel[0]
        assert abs(np.dot(vrel, pos[1] - pos[0])) < 1e-9
        # tangential component untouched
        assert vel[1][1] - vel[0][1] == pytest.approx(0.2)


class TestRigidWaterDynamics:
    def test_water_constraints_extraction(self, water64):
        solver = water_constraints(water64)
        assert solver.n_constraints == 64 * 3
        assert solver.max_violation(water64.positions, water64.box) < 0.2

    def test_rigid_water_nve_keeps_geometry(self):
        """Constrained dynamics at dt=2 fs keeps every water rigid."""
        from repro.md.bonded import compute_bonded
        from repro.md.constants import ACC_CONVERSION
        from repro.md.nonbonded import NonbondedOptions, compute_nonbonded

        s = small_water_box(27, seed=5)
        s.assign_velocities(300.0, seed=2)
        solver = water_constraints(s)
        solver.shake(s.positions, s.masses, s.box)
        opts = NonbondedOptions(cutoff=4.5)
        dt = 2.0  # rigid water tolerates 2 fs
        masses = s.masses[:, None]

        def forces():
            nb = compute_nonbonded(s, opts)
            _, f = compute_bonded(s)
            return f + nb.forces

        f = forces()
        for _ in range(10):
            s.velocities += 0.5 * dt * ACC_CONVERSION * f / masses
            s.positions += dt * s.velocities
            solver.shake(s.positions, s.masses, s.box, s.velocities, dt)
            f = forces()
            s.velocities += 0.5 * dt * ACC_CONVERSION * f / masses
            solver.rattle(s.positions, s.velocities, s.masses, s.box)
        assert solver.max_violation(s.positions, s.box) < 1e-6
