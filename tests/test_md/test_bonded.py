"""Bonded kernels: analytic forces vs numerical gradients, invariants."""

import numpy as np
import pytest

from repro.md import bonded
from repro.md.forcefield import (
    STANDARD_ANGLE,
    STANDARD_BOND,
    STANDARD_DIHEDRAL,
    STANDARD_IMPROPER,
)
from repro.md.system import MolecularSystem
from repro.md.topology import Topology
from repro.md.forcefield import default_forcefield


def four_atom_system(positions, topo):
    ff = default_forcefield()
    n = len(positions)
    return MolecularSystem(
        positions=np.asarray(positions, dtype=float),
        velocities=np.zeros((n, 3)),
        charges=np.zeros(n),
        type_indices=np.full(n, ff.atom_type_index("CT")),
        topology=topo,
        forcefield=ff,
        box=np.array([50.0, 50.0, 50.0]),
    )


def numerical_forces(system, kernel, h=1e-6):
    def energy():
        f = np.zeros_like(system.positions)
        return kernel(system, f)

    out = np.zeros_like(system.positions)
    for i in range(system.n_atoms):
        for d in range(3):
            orig = system.positions[i, d]
            system.positions[i, d] = orig + h
            ep = energy()
            system.positions[i, d] = orig - h
            em = energy()
            system.positions[i, d] = orig
            out[i, d] = -(ep - em) / (2 * h)
    return out


class TestBonds:
    def test_energy_zero_at_equilibrium(self):
        topo = Topology()
        topo.add_bond(0, 1, STANDARD_BOND)
        s = four_atom_system([[0, 0, 0], [STANDARD_BOND.r0, 0, 0]], topo)
        f = np.zeros((2, 3))
        assert bonded.compute_bonds(s, f) == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(f, 0.0, atol=1e-9)

    def test_stretched_bond_pulls_together(self):
        topo = Topology()
        topo.add_bond(0, 1, STANDARD_BOND)
        s = four_atom_system([[0, 0, 0], [STANDARD_BOND.r0 + 0.5, 0, 0]], topo)
        f = np.zeros((2, 3))
        e = bonded.compute_bonds(s, f)
        assert e == pytest.approx(STANDARD_BOND.k * 0.25)
        assert f[0, 0] > 0 and f[1, 0] < 0  # attraction

    def test_forces_match_numerical(self, rng):
        topo = Topology()
        topo.add_bond(0, 1, STANDARD_BOND)
        topo.add_bond(1, 2, STANDARD_BOND)
        s = four_atom_system(rng.normal(scale=1.5, size=(3, 3)) + 25.0, topo)
        f = np.zeros((3, 3))
        bonded.compute_bonds(s, f)
        np.testing.assert_allclose(
            f, numerical_forces(s, bonded.compute_bonds), rtol=1e-5, atol=1e-6
        )

    def test_pbc_bond_across_boundary(self):
        topo = Topology()
        topo.add_bond(0, 1, STANDARD_BOND)
        # atoms on opposite faces: true separation via PBC is small
        s = four_atom_system([[0.2, 0, 0], [49.8, 0, 0]], topo)
        f = np.zeros((2, 3))
        e = bonded.compute_bonds(s, f)
        # min-image distance = 0.4 -> compressed bond, not stretched to 49.6
        assert e == pytest.approx(STANDARD_BOND.k * (0.4 - STANDARD_BOND.r0) ** 2)

    def test_subset_selects_terms(self):
        topo = Topology()
        topo.add_bond(0, 1, STANDARD_BOND)
        topo.add_bond(1, 2, STANDARD_BOND)
        s = four_atom_system([[0, 0, 0], [2.0, 0, 0], [4.0, 0, 0]], topo)
        f_all = np.zeros((3, 3))
        e_all = bonded.compute_bonds(s, f_all)
        f0 = np.zeros((3, 3))
        e0 = bonded.compute_bonds(s, f0, subset=np.array([0]))
        f1 = np.zeros((3, 3))
        e1 = bonded.compute_bonds(s, f1, subset=np.array([1]))
        assert e0 + e1 == pytest.approx(e_all)
        np.testing.assert_allclose(f0 + f1, f_all, atol=1e-12)


class TestAngles:
    def test_energy_zero_at_equilibrium(self):
        theta0 = STANDARD_ANGLE.theta0
        topo = Topology()
        topo.add_angle(0, 1, 2, STANDARD_ANGLE)
        pos = [
            [np.cos(theta0), np.sin(theta0), 0.0],
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
        ]
        s = four_atom_system(pos, topo)
        f = np.zeros((3, 3))
        assert bonded.compute_angles(s, f) == pytest.approx(0.0, abs=1e-10)

    def test_forces_match_numerical(self, rng):
        topo = Topology()
        topo.add_angle(0, 1, 2, STANDARD_ANGLE)
        s = four_atom_system(rng.normal(scale=1.5, size=(3, 3)) + 25.0, topo)
        f = np.zeros((3, 3))
        bonded.compute_angles(s, f)
        np.testing.assert_allclose(
            f, numerical_forces(s, bonded.compute_angles), rtol=1e-4, atol=1e-6
        )

    def test_net_force_and_torque_free(self, rng):
        topo = Topology()
        topo.add_angle(0, 1, 2, STANDARD_ANGLE)
        pos = rng.normal(scale=1.5, size=(3, 3)) + 25.0
        s = four_atom_system(pos, topo)
        f = np.zeros((3, 3))
        bonded.compute_angles(s, f)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-10)
        torque = np.cross(s.positions - s.positions.mean(axis=0), f).sum(axis=0)
        np.testing.assert_allclose(torque, 0.0, atol=1e-9)


class TestDihedrals:
    def test_forces_match_numerical(self, rng):
        topo = Topology()
        topo.add_dihedral(0, 1, 2, 3, STANDARD_DIHEDRAL)
        s = four_atom_system(rng.normal(scale=1.5, size=(4, 3)) + 25.0, topo)
        f = np.zeros((4, 3))
        bonded.compute_dihedrals(s, f)
        np.testing.assert_allclose(
            f, numerical_forces(s, bonded.compute_dihedrals), rtol=1e-4, atol=1e-6
        )

    def test_net_force_zero(self, rng):
        topo = Topology()
        topo.add_dihedral(0, 1, 2, 3, STANDARD_DIHEDRAL)
        s = four_atom_system(rng.normal(scale=2.0, size=(4, 3)) + 25.0, topo)
        f = np.zeros((4, 3))
        bonded.compute_dihedrals(s, f)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-10)

    def test_energy_bounds(self, rng):
        """E = k (1 + cos(...)) lies in [0, 2k]."""
        topo = Topology()
        topo.add_dihedral(0, 1, 2, 3, STANDARD_DIHEDRAL)
        for _ in range(10):
            s = four_atom_system(rng.normal(scale=2.0, size=(4, 3)) + 25.0, topo)
            f = np.zeros((4, 3))
            e = bonded.compute_dihedrals(s, f)
            assert 0.0 <= e <= 2.0 * STANDARD_DIHEDRAL.k + 1e-12

    def test_planar_trans_configuration_angle(self):
        """A planar zig-zag has phi = pi."""
        topo = Topology()
        topo.add_dihedral(0, 1, 2, 3, STANDARD_DIHEDRAL)
        pos = [[0, 1, 0], [0, 0, 0], [1, 0, 0], [1, -1, 0]]
        s = four_atom_system(pos, topo)
        phi = bonded.dihedral_angles(s)
        assert abs(abs(phi[0]) - np.pi) < 1e-9


class TestImpropers:
    def test_forces_match_numerical(self, rng):
        topo = Topology()
        topo.add_improper(0, 1, 2, 3, STANDARD_IMPROPER)
        s = four_atom_system(rng.normal(scale=1.5, size=(4, 3)) + 25.0, topo)
        f = np.zeros((4, 3))
        bonded.compute_impropers(s, f)
        np.testing.assert_allclose(
            f, numerical_forces(s, bonded.compute_impropers), rtol=1e-4, atol=1e-6
        )

    def test_wraps_angle_difference(self):
        """psi0 near pi must behave continuously across the branch cut."""
        from repro.md.forcefield import ImproperType

        itype = ImproperType(k=10.0, psi0=np.pi - 0.01)
        topo = Topology()
        topo.add_improper(0, 1, 2, 3, itype)
        pos = [[0, 1, 0], [0, 0, 0], [1, 0, 0], [1, -1, 1e-3]]
        s = four_atom_system(pos, topo)
        f = np.zeros((4, 3))
        e = bonded.compute_impropers(s, f)
        assert e < 10.0 * 0.1  # small deviation, not ~ (2 pi)^2


class TestComputeBonded:
    def test_aggregates_all_kinds(self, peptide):
        energies, forces = bonded.compute_bonded(peptide)
        assert energies.bond > 0
        assert energies.angle > 0
        assert energies.dihedral >= 0
        assert energies.total == pytest.approx(
            energies.bond + energies.angle + energies.dihedral + energies.improper
        )
        assert forces.shape == (peptide.n_atoms, 3)

    def test_net_force_zero_full_system(self, peptide):
        _, forces = bonded.compute_bonded(peptide)
        np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-8)
