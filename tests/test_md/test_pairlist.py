"""Verlet neighbor lists: correctness-preserving reuse."""

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.md.engine import SequentialEngine
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions, compute_nonbonded
from repro.md.pairlist import VerletPairList


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            VerletPairList(cutoff=0.0)
        with pytest.raises(ValueError):
            VerletPairList(cutoff=5.0, skin=-1.0)

    def test_first_query_builds(self, water64):
        pl = VerletPairList(cutoff=6.0, skin=1.0)
        pl.pairs(water64.positions, water64.box)
        assert pl.n_builds == 1 and pl.n_reuses == 0

    def test_reuse_under_small_motion(self, water64):
        pl = VerletPairList(cutoff=6.0, skin=1.0)
        pos = water64.positions.copy()
        pl.pairs(pos, water64.box)
        pos2 = pos + 0.1  # well under skin/2
        pl.pairs(pos2, water64.box)
        assert pl.n_reuses == 1

    def test_rebuild_after_large_motion(self, water64):
        pl = VerletPairList(cutoff=6.0, skin=1.0)
        pos = water64.positions.copy()
        pl.pairs(pos, water64.box)
        pos2 = pos.copy()
        pos2[0] += 0.6  # beyond skin/2
        pl.pairs(pos2, water64.box)
        assert pl.n_builds == 2

    def test_invalidate(self, water64):
        pl = VerletPairList(cutoff=6.0, skin=1.0)
        pl.pairs(water64.positions, water64.box)
        pl.invalidate()
        assert pl.needs_rebuild(water64.positions, water64.box)

    def test_atom_count_change_triggers_rebuild(self, water64):
        pl = VerletPairList(cutoff=6.0, skin=1.0)
        pl.pairs(water64.positions, water64.box)
        assert pl.needs_rebuild(water64.positions[:-3], water64.box)

    def test_box_change_triggers_rebuild(self, water64):
        # regression: a resized box invalidates the cached list even though
        # no atom moved (the old implementation never compared the box)
        pl = VerletPairList(cutoff=6.0, skin=1.0)
        pos = water64.positions.copy()
        pl.pairs(pos, water64.box)
        grown = water64.box * 1.25
        assert pl.needs_rebuild(pos, grown)
        pl.pairs(pos, grown)
        assert pl.n_builds == 2
        # and the rebuilt list is anchored to the new box
        assert not pl.needs_rebuild(pos, grown)
        assert pl.needs_rebuild(pos, water64.box)

    def test_pairs_are_read_only(self, water64):
        pl = VerletPairList(cutoff=6.0, skin=1.0)
        i_idx, j_idx = pl.pairs(water64.positions, water64.box)
        with pytest.raises(ValueError):
            i_idx[0] = 0
        with pytest.raises(ValueError):
            j_idx[0] = 0
        # cache not corrupted: a reuse returns the same (intact) arrays
        i2, j2 = pl.pairs(water64.positions, water64.box)
        assert i2 is i_idx and j2 is j_idx


class TestCorrectness:
    def test_energy_identical_with_and_without(self, water64):
        s = water64.copy()
        opts = NonbondedOptions(cutoff=6.0)
        direct = compute_nonbonded(s, opts)
        pl = VerletPairList(cutoff=6.0, skin=1.5)
        listed = compute_nonbonded(s, opts, pairlist=pl)
        assert listed.energy == pytest.approx(direct.energy, rel=1e-12)
        np.testing.assert_allclose(listed.forces, direct.forces, atol=1e-12)

    def test_trajectory_identical_over_reuse_window(self):
        """Dynamics with a pairlist must track direct enumeration exactly
        while the skin guarantee holds."""
        a = small_water_box(64, seed=3).copy()
        a.assign_velocities(300.0, seed=1)
        b = a.copy()
        opts = NonbondedOptions(cutoff=5.0, switch_dist=4.0)
        e1 = SequentialEngine(a, opts, VelocityVerlet(dt=0.5))
        pl = VerletPairList(cutoff=5.0, skin=1.5)
        e2 = SequentialEngine(b, opts, VelocityVerlet(dt=0.5), pairlist=pl)
        for _ in range(10):
            r1 = e1.step()
            r2 = e2.step()
            assert r2.total == pytest.approx(r1.total, rel=1e-9)
        assert pl.reuse_fraction > 0.3  # the point of the exercise
        np.testing.assert_allclose(a.positions, b.positions, atol=1e-9)

    def test_reuse_fraction_statistics(self, water64):
        pl = VerletPairList(cutoff=6.0, skin=2.0)
        pos = water64.positions.copy()
        for _ in range(5):
            pl.pairs(pos, water64.box)
        assert pl.reuse_fraction == pytest.approx(0.8)
