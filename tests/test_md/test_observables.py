"""Observables: RDF normalization/physics, MSD, VACF."""

import numpy as np
import pytest

from repro.md.observables import (
    mean_squared_displacement,
    radial_distribution,
    velocity_autocorrelation,
)


class TestRDF:
    def test_ideal_gas_is_flat(self):
        rng = np.random.default_rng(0)
        box = np.array([20.0, 20.0, 20.0])
        pos = rng.random((800, 3)) * box
        r, g = radial_distribution(pos, box, r_max=9.0, n_bins=30)
        # away from r=0 noise, g ~ 1 for uncorrelated points
        assert np.abs(g[5:] - 1.0).mean() < 0.15

    def test_water_oxygen_first_peak(self):
        """Liquid-water O-O g(r) peaks near 2.8 Å."""
        from repro.builder import small_water_box

        s = small_water_box(216, seed=7)
        oxygens = np.flatnonzero(
            s.type_indices == s.forcefield.atom_type_index("OT")
        )
        r, g = radial_distribution(
            s.positions, s.box, r_max=s.box.min() / 2 * 0.99, n_bins=60,
            subset=oxygens,
        )
        peak_r = r[np.argmax(g)]
        assert 2.2 < peak_r < 3.6
        assert g.max() > 1.3

    def test_rejects_oversized_rmax(self):
        box = np.array([10.0, 10.0, 10.0])
        with pytest.raises(ValueError):
            radial_distribution(np.zeros((5, 3)), box, r_max=6.0)

    def test_rejects_single_atom(self):
        box = np.ones(3) * 10
        with pytest.raises(ValueError):
            radial_distribution(np.zeros((1, 3)), box, r_max=4.0)


class TestMSD:
    def test_zero_at_frame_zero(self):
        traj = np.random.default_rng(0).random((5, 10, 3))
        msd = mean_squared_displacement(traj)
        assert msd[0] == 0.0

    def test_linear_for_ballistic_motion(self):
        v = np.random.default_rng(1).normal(size=(10, 3))
        traj = np.array([i * v for i in range(6)])
        msd = mean_squared_displacement(traj)
        # ballistic: MSD ~ t^2
        ratios = msd[2:] / msd[1]
        np.testing.assert_allclose(ratios, np.arange(2, 6) ** 2, rtol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mean_squared_displacement(np.zeros((5, 3)))


class TestVACF:
    def test_normalized_at_zero(self):
        frames = np.random.default_rng(2).normal(size=(4, 20, 3))
        c = velocity_autocorrelation(frames)
        assert c[0] == pytest.approx(1.0)

    def test_constant_velocity_stays_one(self):
        v = np.random.default_rng(3).normal(size=(10, 3))
        frames = np.array([v] * 5)
        np.testing.assert_allclose(velocity_autocorrelation(frames), 1.0)

    def test_zero_velocity_rejected(self):
        with pytest.raises(ValueError):
            velocity_autocorrelation(np.zeros((3, 5, 3)))
