"""Fault injection and supervised recovery on the real parallel engine.

The contract under test: a worker SIGKILL'd, SIGSTOP'd, erroring, or
slowed mid-run is detected by the supervisor and healed — respawn first,
reassignment to survivors when respawns are exhausted, sequential fallback
only when nobody is left — and the recovered trajectory is **bit-identical**
to an unfaulted run at the same worker count.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.builder import small_water_box
from repro.md.engine import SequentialEngine
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import HAS_SHARED_MEMORY, ParallelEngine, ParallelNonbonded
from repro.md.resilience import (
    HAS_POSIX_SIGNALS,
    FaultInjector,
    RecoveryPolicy,
    ResilienceStats,
    WorkerFaultPlan,
    WorkerHang,
    WorkerKill,
)

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="platform lacks multiprocessing.shared_memory"
)

needs_signals = pytest.mark.skipif(
    not HAS_POSIX_SIGNALS, reason="platform lacks SIGKILL/SIGSTOP"
)

OPTS = NonbondedOptions(cutoff=8.0)


@pytest.fixture(scope="module")
def water600():
    return small_water_box(600, seed=7, relax=False)


def run_trajectory(
    base, steps=6, workers=2, fault=None, policy=None, timeout=30.0
):
    """Run ``steps`` MD steps; returns (positions, velocities, E, engine facts)."""
    s = base.copy()
    s.assign_velocities(300.0, seed=5)
    with ParallelEngine(
        s,
        options=OPTS,
        workers=workers,
        timeout=timeout,
        fault_plan=fault,
        recovery=policy,
    ) as eng:
        assert eng.parallel
        reports = [eng.step() for _ in range(steps)]
        facts = {
            "resilience": eng.resilience,
            "parallel_at_end": eng.parallel,
            "live_workers": eng.workers,
        }
    return s.positions.copy(), s.velocities.copy(), reports[-1].total, facts


# --------------------------------------------------------------------------- #
# plan parsing and injector basics (no processes involved)
# --------------------------------------------------------------------------- #
class TestWorkerFaultPlan:
    def test_parse_full_spec(self):
        plan = WorkerFaultPlan.parse("kill=1@3,hang=0@5x2.5,slow=1@2-6x8")
        assert plan.kills == (WorkerKill(worker=1, step=3),)
        assert len(plan.hangs) == 1
        assert plan.hangs[0].worker == 0
        assert plan.hangs[0].step == 5
        assert plan.hangs[0].duration_s == pytest.approx(2.5)
        assert len(plan.slowdowns) == 1
        w = plan.slowdowns[0]
        assert (w.proc, w.start, w.end, w.factor) == (1, 2, 6, 8.0)
        assert plan.active
        assert plan.max_worker() == 1

    def test_parse_infinite_hang(self):
        plan = WorkerFaultPlan.parse("hang=2@4")
        assert plan.hangs[0].duration_s == np.inf
        assert plan.max_worker() == 2

    def test_parse_rejects_garbage(self):
        for bad in ["kill=x@2", "kill=1", "frob=1@2", "slow=1@3x2", "1@2"]:
            with pytest.raises(ValueError):
                WorkerFaultPlan.parse(bad)

    def test_parse_empty_spec_is_inactive(self):
        assert not WorkerFaultPlan.parse("").active

    def test_kill_validates_fields(self):
        with pytest.raises(ValueError):
            WorkerKill(worker=-1, step=3)
        with pytest.raises(ValueError):
            WorkerKill(worker=0, step=0)

    def test_empty_plan_is_inactive(self):
        assert not WorkerFaultPlan(kills=(), hangs=(), slowdowns=()).active

    def test_plan_beyond_pool_size_rejected_by_engine(self, water600):
        with pytest.raises(ValueError, match="worker 7"):
            ParallelNonbonded(
                water600.copy(), OPTS, n_workers=2, fault_plan="kill=7@1"
            )


class TestRecoveryPolicy:
    def test_backoff_is_exponential(self):
        pol = RecoveryPolicy(respawn_backoff_s=0.05)
        assert pol.backoff(0) == pytest.approx(0.05)
        assert pol.backoff(1) == pytest.approx(0.10)
        assert pol.backoff(2) == pytest.approx(0.20)

    def test_hang_threshold_clamps(self):
        pol = RecoveryPolicy(min_hang_timeout_s=1.0, hang_grace_factor=20.0)
        # no history yet: the full timeout is the only bound
        assert pol.hang_threshold(0.0, 30.0) == pytest.approx(30.0)
        # tiny steps clamp up to the floor
        assert pol.hang_threshold(0.001, 30.0) == pytest.approx(1.0)
        # normal steps scale by the grace factor
        assert pol.hang_threshold(0.2, 30.0) == pytest.approx(4.0)
        # never beyond the hard timeout
        assert pol.hang_threshold(10.0, 30.0) == pytest.approx(30.0)
        # an explicit setting wins
        pol = RecoveryPolicy(hang_timeout_s=2.0)
        assert pol.hang_threshold(10.0, 30.0) == pytest.approx(2.0)


# --------------------------------------------------------------------------- #
# live-process fault injection and recovery
# --------------------------------------------------------------------------- #
@needs_signals
class TestKillRecovery:
    def test_sigkill_recovered_bit_identical(self, water600):
        p_ref, v_ref, e_ref, _ = run_trajectory(water600)
        p, v, e, facts = run_trajectory(water600, fault="kill=1@3")
        res = facts["resilience"]
        assert res.kills_detected == 1
        assert res.respawns == 1
        assert res.mode == "full"
        assert facts["parallel_at_end"]
        assert np.array_equal(p, p_ref)
        assert np.array_equal(v, v_ref)
        assert e == e_ref

    def test_detection_under_two_seconds(self, water600):
        _, _, _, facts = run_trajectory(water600, fault="kill=0@2")
        events = facts["resilience"].events
        assert len(events) == 1
        assert events[0].kind == "died"
        assert events[0].detection_s < 2.0

    def test_both_workers_killed_same_run(self, water600):
        p_ref, _, e_ref, _ = run_trajectory(water600)
        p, _, e, facts = run_trajectory(water600, fault="kill=0@2,kill=1@4")
        res = facts["resilience"]
        assert res.kills_detected == 2
        assert res.respawns == 2
        assert np.array_equal(p, p_ref)
        assert e == e_ref

    def test_exhausted_respawns_reassign_to_survivors(self, water600):
        p_ref, _, e_ref, _ = run_trajectory(water600)
        pol = RecoveryPolicy(max_respawns=0)
        p, _, e, facts = run_trajectory(water600, fault="kill=1@3", policy=pol)
        res = facts["resilience"]
        assert res.respawns == 0
        assert res.tasks_reassigned > 0
        assert res.mode == "degraded"
        assert res.degraded_steps > 0
        # the pool kept running, one worker short — not the sequential path
        assert facts["parallel_at_end"]
        assert facts["live_workers"] == 1
        assert np.array_equal(p, p_ref)
        assert e == e_ref

    def test_all_workers_lost_degrades_to_sequential(self, water600):
        p_ref, _, _, _ = run_trajectory(water600)
        pol = RecoveryPolicy(max_respawns=0)
        with pytest.warns(RuntimeWarning, match="degraded to the sequential"):
            p, _, _, facts = run_trajectory(
                water600, fault="kill=0@2,kill=1@4", policy=pol
            )
        res = facts["resilience"]
        assert res.mode == "sequential"
        assert not facts["parallel_at_end"]
        # sequential fallback is numerically (not bitwise) the same physics
        assert np.allclose(p, p_ref, rtol=0, atol=1e-9)


@needs_signals
class TestHangRecovery:
    def test_finite_hang_rides_through(self, water600):
        # a short SIGSTOP resumes before the adaptive hang threshold fires:
        # the step is just slow, no recovery action is taken
        p_ref, _, e_ref, _ = run_trajectory(water600)
        p, _, e, facts = run_trajectory(water600, fault="hang=0@2x0.3")
        assert np.array_equal(p, p_ref)
        assert e == e_ref

    def test_infinite_hang_detected_and_respawned(self, water600):
        p_ref, _, e_ref, _ = run_trajectory(water600)
        p, _, e, facts = run_trajectory(water600, fault="hang=1@3")
        res = facts["resilience"]
        assert res.hangs_detected == 1
        assert res.respawns == 1
        assert np.array_equal(p, p_ref)
        assert e == e_ref

    def test_repeat_faulted_runs_bit_identical(self, water600):
        a = run_trajectory(water600, fault="kill=1@2")
        b = run_trajectory(water600, fault="kill=1@2")
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])
        assert a[2] == b[2]


class TestSlowdownInjection:
    def test_slowdown_does_not_change_physics(self, water600):
        p_ref, _, e_ref, _ = run_trajectory(water600, steps=4)
        p, _, e, facts = run_trajectory(
            water600, steps=4, fault="slow=0@1-3x5"
        )
        assert facts["resilience"].n_failures == 0
        assert np.array_equal(p, p_ref)
        assert e == e_ref


@needs_signals
class TestRecoveryAccounting:
    def test_workdb_mirrors_supervisor_counters(self, water600):
        s = water600.copy()
        s.assign_velocities(300.0, seed=5)
        with ParallelEngine(
            s, options=OPTS, workers=2, timeout=30.0, fault_plan="kill=1@2"
        ) as eng:
            for _ in range(4):
                eng.step()
            db = eng.workdb
            assert db.recovery.get("kills") == 1
            assert db.recovery.get("respawns") == 1
            # and the analysis layer surfaces it
            from repro.analysis import format_recovery_summary

            line = format_recovery_summary(db)
            assert "kills=1" in line and "respawns=1" in line

    def test_recovery_survives_dump_reload(self, water600, tmp_path):
        s = water600.copy()
        s.assign_velocities(300.0, seed=5)
        with ParallelEngine(
            s, options=OPTS, workers=2, timeout=30.0, fault_plan="kill=0@2"
        ) as eng:
            for _ in range(3):
                eng.step()
            path = tmp_path / "db.json"
            eng.workdb.dump(path)
        from repro.instrument import WorkDB

        db = WorkDB.load_file(path)
        assert db.recovery.get("kills") == 1

    def test_stats_to_dict_roundtrip_fields(self):
        stats = ResilienceStats()
        d = stats.to_dict()
        for key in (
            "mode",
            "kills_detected",
            "hangs_detected",
            "respawns",
            "tasks_reassigned",
            "degraded_steps",
            "recovery_time_s",
        ):
            assert key in d


# --------------------------------------------------------------------------- #
# property: any single-worker fault schedule recovers to the reference
# --------------------------------------------------------------------------- #
@needs_signals
class TestRecoveryProperty:
    @given(
        kind=st.sampled_from(["kill", "hang"]),
        worker=st.integers(min_value=0, max_value=1),
        step=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=5, deadline=None)
    def test_single_fault_matches_sequential_and_repeats(
        self, kind, worker, step
    ):
        base = small_water_box(600, seed=7, relax=False)
        spec = f"{kind}={worker}@{step}"

        seq = base.copy()
        seq.assign_velocities(300.0, seed=5)
        with SequentialEngine(seq, OPTS, pairlist=None) as eng:
            for _ in range(5):
                eng.step()

        p1, v1, e1, facts = run_trajectory(base, steps=5, fault=spec)
        assert facts["parallel_at_end"]
        assert facts["resilience"].n_failures == 1
        # recovered forces integrate to the sequential trajectory (1e-9)
        assert np.allclose(p1, seq.positions, rtol=0, atol=1e-9)
        # and the faulted run is exactly repeatable
        p2, v2, e2, _ = run_trajectory(base, steps=5, fault=spec)
        assert np.array_equal(p1, p2)
        assert np.array_equal(v1, v2)
        assert e1 == e2


# --------------------------------------------------------------------------- #
# injector unit behaviour against throwaway processes
# --------------------------------------------------------------------------- #
@needs_signals
class TestFaultInjector:
    def _spawn_sleeper(self):
        import multiprocessing as mp

        proc = mp.get_context("fork").Process(target=time.sleep, args=(60.0,))
        proc.start()
        return proc

    def test_kill_fires_once(self):
        proc = self._spawn_sleeper()
        try:
            inj = FaultInjector(WorkerFaultPlan.parse("kill=0@2"))
            assert inj.inject(1, {0: proc.pid}) == []
            fired = inj.inject(2, {0: proc.pid})
            assert len(fired) == 1
            proc.join(timeout=5.0)
            assert not proc.is_alive()
            assert inj.inject(2, {0: proc.pid}) == []  # once only
        finally:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)

    def test_finite_hang_resumes_via_poll(self):
        proc = self._spawn_sleeper()
        try:
            inj = FaultInjector(WorkerFaultPlan.parse("hang=0@1x0.2"))
            inj.inject(1, {0: proc.pid})
            deadline = time.monotonic() + 5.0
            resumed = []
            while time.monotonic() < deadline and not resumed:
                resumed = inj.poll()
                time.sleep(0.05)
            assert resumed == [0]
        finally:
            inj.release_all()
            proc.kill()
            proc.join(timeout=5.0)

    def test_release_all_unfreezes(self):
        proc = self._spawn_sleeper()
        try:
            inj = FaultInjector(WorkerFaultPlan.parse("hang=0@1"))
            inj.inject(1, {0: proc.pid})
            inj.release_all()
            # a SIGCONT'd process accepts SIGTERM again
            proc.terminate()
            proc.join(timeout=5.0)
            assert not proc.is_alive()
        finally:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)

    def test_dead_pid_is_swallowed(self):
        proc = self._spawn_sleeper()
        proc.kill()
        proc.join(timeout=5.0)
        inj = FaultInjector(WorkerFaultPlan.parse("kill=0@1"))
        inj.inject(1, {0: proc.pid})  # must not raise


# --------------------------------------------------------------------------- #
# disk checkpoint/resume on the parallel engine
# --------------------------------------------------------------------------- #
class TestParallelCheckpointResume:
    """Resume must reproduce the checkpointed run bit-for-bit.

    (An *unfaulted, uncheckpointed* run can differ at the last ulp because
    writing a checkpoint pins a pairlist rebuild at the next evaluation —
    the rebuild schedule, not the physics, shifts.  The contract is that
    the resumed run continues the checkpointed run exactly.)
    """

    def _fresh(self, base):
        s = base.copy()
        s.assign_velocities(300.0, seed=5)
        return s

    def test_resume_is_bit_identical(self, water600, tmp_path):
        from repro.runtime.checkpoint import (
            load_run_checkpoint,
            restore_run_checkpoint,
        )

        path = tmp_path / "run.ckpt"
        # checkpointed run: 5 steps, one checkpoint written at step 3
        s_a = self._fresh(water600)
        with ParallelEngine(
            s_a,
            options=OPTS,
            workers=2,
            timeout=30.0,
            checkpoint_every=3,
            checkpoint_path=path,
        ) as eng:
            assert eng.parallel
            for _ in range(5):
                rep_a = eng.step()
            assert eng.n_checkpoints == 1

        cp = load_run_checkpoint(path)
        assert cp.step == 3

        s_b = self._fresh(water600)
        with ParallelEngine(s_b, options=OPTS, workers=2, timeout=30.0) as eng:
            restore_run_checkpoint(eng, cp)
            for _ in range(2):
                rep_b = eng.step()

        np.testing.assert_array_equal(s_b.positions, s_a.positions)
        np.testing.assert_array_equal(s_b.velocities, s_a.velocities)
        assert rep_b.total == rep_a.total

    @needs_signals
    def test_resume_after_fault_matches_clean_run(self, water600, tmp_path):
        """Worker SIGKILL'd after resume: the recovered, resumed trajectory
        still matches the checkpointed run continued without faults."""
        from repro.runtime.checkpoint import (
            load_run_checkpoint,
            restore_run_checkpoint,
        )

        path = tmp_path / "run.ckpt"
        s_a = self._fresh(water600)
        with ParallelEngine(
            s_a,
            options=OPTS,
            workers=2,
            timeout=30.0,
            checkpoint_every=3,
            checkpoint_path=path,
        ) as eng:
            for _ in range(5):
                eng.step()

        cp = load_run_checkpoint(path)
        # evaluation indices keep counting from the restored nb_seq, so
        # schedule the kill on the second resumed evaluation
        fault = WorkerFaultPlan(
            kills=(WorkerKill(worker=0, step=cp.nb_seq + 2),)
        )

        s_b = self._fresh(water600)
        with ParallelEngine(
            s_b, options=OPTS, workers=2, timeout=30.0, fault_plan=fault
        ) as eng:
            restore_run_checkpoint(eng, cp)
            for _ in range(2):
                eng.step()
            assert eng.resilience.kills_detected == 1
            assert eng.resilience.mode == "full"

        np.testing.assert_array_equal(s_b.positions, s_a.positions)
        np.testing.assert_array_equal(s_b.velocities, s_a.velocities)
