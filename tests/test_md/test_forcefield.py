"""Force-field registry and parameter validation."""

import numpy as np
import pytest

from repro.md.forcefield import (
    AtomType,
    BondType,
    ForceField,
    default_forcefield,
)


class TestAtomType:
    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ValueError):
            AtomType("X", 0.0, 0.1, 1.0)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            AtomType("X", 1.0, -0.1, 1.0)

    def test_rejects_negative_rmin(self):
        with pytest.raises(ValueError):
            AtomType("X", 1.0, 0.1, -1.0)


class TestForceField:
    def test_registration_returns_stable_indices(self):
        ff = ForceField()
        i = ff.add_atom_type(AtomType("A", 1.0, 0.1, 1.0))
        j = ff.add_atom_type(AtomType("B", 2.0, 0.2, 2.0))
        assert (i, j) == (0, 1)
        assert ff.atom_type_index("A") == 0
        assert ff.atom_type_index("B") == 1

    def test_idempotent_reregistration(self):
        ff = ForceField()
        t = AtomType("A", 1.0, 0.1, 1.0)
        assert ff.add_atom_type(t) == ff.add_atom_type(t)
        assert ff.n_atom_types == 1

    def test_conflicting_redefinition_raises(self):
        ff = ForceField()
        ff.add_atom_type(AtomType("A", 1.0, 0.1, 1.0))
        with pytest.raises(ValueError):
            ff.add_atom_type(AtomType("A", 9.0, 0.1, 1.0))

    def test_unknown_type_raises_keyerror(self):
        with pytest.raises(KeyError):
            ForceField().atom_type_index("nope")

    def test_contains(self):
        ff = default_forcefield()
        assert "OT" in ff
        assert "XX" not in ff

    def test_lj_tables_order_matches_indices(self):
        ff = default_forcefield()
        mass, eps, rmin = ff.lj_tables()
        i = ff.atom_type_index("OT")
        assert mass[i] == pytest.approx(15.9994)
        assert eps[i] == pytest.approx(0.1521)
        assert rmin[i] == pytest.approx(1.7682)
        assert len(mass) == len(eps) == len(rmin) == ff.n_atom_types


class TestDefaultForcefield:
    def test_covers_builder_types(self):
        ff = default_forcefield()
        for name in ("OT", "HT", "C", "CA", "CT", "N", "O", "H", "HA",
                     "CTL", "CL", "PL", "OSL", "O2L", "NTL"):
            assert name in ff

    def test_water_types_are_tip3p_like(self):
        ff = default_forcefield()
        mass, _, _ = ff.lj_tables()
        assert mass[ff.atom_type_index("HT")] == pytest.approx(1.008)

    def test_bond_type_values(self):
        b = BondType(k=340.0, r0=1.53)
        assert b.k == 340.0 and b.r0 == 1.53
