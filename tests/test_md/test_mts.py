"""Multiple-timestep (r-RESPA) integrator."""

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.md.mts import MTSEngine
from repro.md.nonbonded import NonbondedOptions


@pytest.fixture()
def water():
    s = small_water_box(64, seed=3).copy()
    s.assign_velocities(300.0, seed=1)
    return s


class TestMTS:
    def test_validation(self, water):
        with pytest.raises(ValueError):
            MTSEngine(water, n_inner=0)
        with pytest.raises(ValueError):
            MTSEngine(water, dt=0.0)

    def test_energy_conservation_n_inner_1(self, water):
        eng = MTSEngine(water, dt=0.5, n_inner=1,
                        options=NonbondedOptions(cutoff=5.0, switch_dist=4.0))
        reports = eng.run(30)
        e0 = reports[0].total
        devs = [abs(r.total - e0) / abs(e0) for r in reports]
        assert max(devs) < 5e-3

    def test_energy_conservation_n_inner_2(self, water):
        eng = MTSEngine(water, dt=0.5, n_inner=2,
                        options=NonbondedOptions(cutoff=5.0, switch_dist=4.0))
        reports = eng.run(20)
        e0 = reports[0].total
        devs = [abs(r.total - e0) / abs(e0) for r in reports]
        assert max(devs) < 2e-2

    def test_saves_nonbonded_evaluations(self, water):
        eng = MTSEngine(water, n_inner=4)
        assert eng.nonbonded_evaluations_saved == pytest.approx(0.75)

    def test_matches_verlet_in_limit(self):
        """With n_inner=1, MTS is velocity Verlet with split evaluation:
        one step must match the sequential engine's step closely."""
        from repro.md.engine import SequentialEngine
        from repro.md.integrator import VelocityVerlet

        a = small_water_box(27, seed=5).copy()
        a.assign_velocities(200.0, seed=2)
        b = a.copy()

        opts = NonbondedOptions(cutoff=5.0, switch_dist=4.0)
        mts = MTSEngine(a, dt=0.5, n_inner=1, options=opts)
        seq = SequentialEngine(b, opts, VelocityVerlet(dt=0.5))
        mts.step()
        seq.step()
        np.testing.assert_allclose(a.positions, np.mod(b.positions, b.box),
                                   atol=1e-10)

    def test_outer_step_counter(self, water):
        eng = MTSEngine(water, n_inner=2)
        eng.run(3)
        assert eng.step().outer_step == 4
