"""Physics invariance properties of the force field (hypothesis-driven).

The potential energy of an isolated system must be invariant under rigid
translation (and, in a big enough box to avoid image changes, rotation);
forces must transform covariantly.  These catch subtle kernel bugs that
pointwise gradient checks miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.builder import tiny_peptide
from repro.md.bonded import compute_bonded
from repro.md.nonbonded import NonbondedOptions, compute_nonbonded


def total_energy_and_forces(system):
    nb = compute_nonbonded(system, NonbondedOptions(cutoff=10.0))
    be, forces = compute_bonded(system)
    forces += nb.forces
    return nb.energy + be.total, forces


@pytest.fixture(scope="module")
def peptide_sys():
    return tiny_peptide(4, seed=3)


class TestTranslationInvariance:
    @given(
        st.tuples(
            st.floats(-5, 5, allow_nan=False),
            st.floats(-5, 5, allow_nan=False),
            st.floats(-5, 5, allow_nan=False),
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_energy_unchanged_by_translation(self, peptide_sys, shift):
        s = peptide_sys.copy()
        e0, f0 = total_energy_and_forces(s)
        s.positions += np.array(shift)
        e1, f1 = total_energy_and_forces(s)
        assert e1 == pytest.approx(e0, rel=1e-9, abs=1e-9)
        np.testing.assert_allclose(f1, f0, atol=1e-7)

    def test_energy_unchanged_by_whole_box_period(self, peptide_sys):
        s = peptide_sys.copy()
        e0, _ = total_energy_and_forces(s)
        s.positions += s.box  # a full period
        e1, _ = total_energy_and_forces(s)
        assert e1 == pytest.approx(e0, rel=1e-9)


class TestRotationInvariance:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_energy_unchanged_by_rotation(self, peptide_sys, seed):
        rng = np.random.default_rng(seed)
        q, r = np.linalg.qr(rng.normal(size=(3, 3)))
        q *= np.sign(np.diag(r))
        if np.linalg.det(q) < 0:
            q[:, 0] *= -1  # proper rotation

        s = peptide_sys.copy()
        e0, f0 = total_energy_and_forces(s)
        center = s.box / 2
        s.positions = (s.positions - center) @ q.T + center
        e1, f1 = total_energy_and_forces(s)
        assert e1 == pytest.approx(e0, rel=1e-8)
        # forces rotate with the configuration
        np.testing.assert_allclose(f1, f0 @ q.T, atol=1e-6)


class TestNewtonThirdLaw:
    def test_momentum_conserving_forces(self, peptide_sys):
        _, f = total_energy_and_forces(peptide_sys.copy())
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-8)

    def test_isolated_molecule_torque_free(self, peptide_sys):
        s = peptide_sys.copy()
        _, f = total_energy_and_forces(s)
        com = s.positions.mean(axis=0)
        torque = np.cross(s.positions - com, f).sum(axis=0)
        np.testing.assert_allclose(torque, 0.0, atol=1e-6)


class TestEnergyScaleProperties:
    @given(st.floats(0.5, 2.0))
    @settings(max_examples=10, deadline=None)
    def test_charge_scaling_quadratic_in_electrostatics(self, peptide_sys, scale):
        s1 = peptide_sys.copy()
        e1 = compute_nonbonded(s1, NonbondedOptions(cutoff=10.0)).energy_elec
        s2 = peptide_sys.copy()
        s2.charges = s2.charges * scale
        e2 = compute_nonbonded(s2, NonbondedOptions(cutoff=10.0)).energy_elec
        assert e2 == pytest.approx(e1 * scale * scale, rel=1e-9, abs=1e-12)
