"""Integrators: exactness on analytic systems, thermostat behaviour."""

import numpy as np
import pytest

from repro.md.constants import ACC_CONVERSION
from repro.md.integrator import LangevinIntegrator, VelocityVerlet


class TestVelocityVerlet:
    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            VelocityVerlet(dt=0.0)

    def test_free_particle_constant_velocity(self):
        vv = VelocityVerlet(dt=1.0)
        x = np.zeros((1, 3))
        v = np.array([[0.1, 0.0, 0.0]])
        f = np.zeros((1, 3))
        m = np.array([1.0])
        for _ in range(10):
            f = vv.step(x, v, f, m, lambda pos: np.zeros((1, 3)))
        np.testing.assert_allclose(v, [[0.1, 0.0, 0.0]])
        np.testing.assert_allclose(x, [[1.0, 0.0, 0.0]])

    def test_harmonic_oscillator_energy_conservation(self):
        """SHO with period >> dt conserves energy to O(dt^2)."""
        k = 100.0  # kcal/mol/A^2
        m = np.array([12.0])
        vv = VelocityVerlet(dt=0.5)
        x = np.array([[0.3, 0.0, 0.0]])
        v = np.zeros((1, 3))

        def force(pos):
            return -k * pos

        f = force(x)

        def energy():
            ke = 0.5 * m[0] * (v**2).sum() / ACC_CONVERSION
            pe = 0.5 * k * (x**2).sum()
            return ke + pe

        e0 = energy()
        for _ in range(2000):
            f = vv.step(x, v, f, m, force)
        assert energy() == pytest.approx(e0, rel=1e-3)

    def test_time_reversibility(self):
        """Integrate forward then backward (v -> -v) returns to start."""
        k = 50.0
        m = np.array([10.0])
        vv = VelocityVerlet(dt=1.0)
        x = np.array([[0.5, -0.2, 0.1]])
        v = np.array([[0.01, 0.02, -0.01]])

        def force(pos):
            return -k * pos

        f = force(x)
        for _ in range(50):
            f = vv.step(x, v, f, m, force)
        v *= -1.0
        for _ in range(50):
            f = vv.step(x, v, f, m, force)
        np.testing.assert_allclose(x, [[0.5, -0.2, 0.1]], atol=1e-9)

    def test_half_kick_units(self):
        vv = VelocityVerlet(dt=2.0)
        v = np.zeros((1, 3))
        vv.half_kick(v, np.array([[1.0, 0.0, 0.0]]), np.array([2.0]))
        assert v[0, 0] == pytest.approx(0.5 * 2.0 * ACC_CONVERSION / 2.0)


class TestLangevin:
    def test_rejects_negative_gamma(self):
        with pytest.raises(ValueError):
            LangevinIntegrator(gamma=-1.0)

    def test_zero_gamma_is_plain_verlet(self):
        li = LangevinIntegrator(dt=1.0, gamma=0.0, temperature=300.0, seed=0)
        v = np.array([[0.1, 0.0, 0.0]])
        li.apply_thermostat(v, np.array([1.0]))
        np.testing.assert_allclose(v, [[0.1, 0.0, 0.0]])

    def test_thermostat_equilibrates_temperature(self):
        """Free particles under Langevin reach the target temperature."""
        from repro.md.constants import BOLTZMANN_KCAL, KCAL_PER_AMU_A2_FS2

        n = 2000
        rng = np.random.default_rng(0)
        masses = np.full(n, 16.0)
        v = np.zeros((n, 3))
        li = LangevinIntegrator(dt=1.0, gamma=0.2, temperature=300.0, seed=42)
        for _ in range(60):
            li.apply_thermostat(v, masses)
        ke = 0.5 * KCAL_PER_AMU_A2_FS2 * (masses[:, None] * v**2).sum()
        temp = 2 * ke / (3 * n * BOLTZMANN_KCAL)
        assert temp == pytest.approx(300.0, rel=0.08)
