"""Topology construction, merging, and exclusion generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.forcefield import (
    STANDARD_ANGLE,
    STANDARD_BOND,
    STANDARD_DIHEDRAL,
    STANDARD_IMPROPER,
)
from repro.md.topology import Topology


def linear_chain(n: int) -> Topology:
    topo = Topology()
    for i in range(n - 1):
        topo.add_bond(i, i + 1, STANDARD_BOND)
    return topo


class TestConstruction:
    def test_rejects_self_bond(self):
        with pytest.raises(ValueError):
            Topology().add_bond(3, 3, STANDARD_BOND)

    def test_rejects_degenerate_angle(self):
        with pytest.raises(ValueError):
            Topology().add_angle(0, 1, 0, STANDARD_ANGLE)

    def test_rejects_degenerate_dihedral(self):
        with pytest.raises(ValueError):
            Topology().add_dihedral(0, 1, 2, 1, STANDARD_DIHEDRAL)

    def test_rejects_degenerate_improper(self):
        with pytest.raises(ValueError):
            Topology().add_improper(0, 1, 1, 3, STANDARD_IMPROPER)

    def test_counts(self):
        t = linear_chain(5)
        t.add_angle(0, 1, 2, STANDARD_ANGLE)
        t.add_dihedral(0, 1, 2, 3, STANDARD_DIHEDRAL)
        assert t.n_bonds == 4
        assert t.n_angles == 1
        assert t.n_dihedrals == 1
        assert t.n_impropers == 0
        assert t.n_terms == 6

    def test_validate_rejects_out_of_range(self):
        t = linear_chain(5)
        with pytest.raises(IndexError):
            t.validate(3)

    def test_arrays_roundtrip(self):
        t = linear_chain(3)
        idx, k, r0 = t.bond_arrays()
        assert idx.shape == (2, 2)
        np.testing.assert_array_equal(idx, [[0, 1], [1, 2]])
        assert np.all(k == STANDARD_BOND.k)
        assert np.all(r0 == STANDARD_BOND.r0)

    def test_empty_arrays_shapes(self):
        t = Topology()
        assert t.bond_arrays()[0].shape == (0, 2)
        assert t.angle_arrays()[0].shape == (0, 3)
        assert t.dihedral_arrays()[0].shape == (0, 4)
        assert t.improper_arrays()[0].shape == (0, 4)


class TestMerge:
    def test_merge_offsets_indices(self):
        a = linear_chain(3)
        b = linear_chain(2)
        a.merge(b, atom_offset=3)
        idx, _, _ = a.bond_arrays()
        np.testing.assert_array_equal(idx, [[0, 1], [1, 2], [3, 4]])

    def test_merge_all_kinds(self):
        a = Topology()
        b = Topology()
        b.add_bond(0, 1, STANDARD_BOND)
        b.add_angle(0, 1, 2, STANDARD_ANGLE)
        b.add_dihedral(0, 1, 2, 3, STANDARD_DIHEDRAL)
        b.add_improper(0, 1, 2, 3, STANDARD_IMPROPER)
        a.merge(b, 10)
        assert a.bond_arrays()[0].tolist() == [[10, 11]]
        assert a.angle_arrays()[0].tolist() == [[10, 11, 12]]
        assert a.dihedral_arrays()[0].tolist() == [[10, 11, 12, 13]]
        assert a.improper_arrays()[0].tolist() == [[10, 11, 12, 13]]


class TestExclusions:
    def test_linear_chain_classes(self):
        # chain 0-1-2-3-4: 1-2 pairs (d=1), 1-3 (d=2) excluded; 1-4 (d=3) modified
        t = linear_chain(5)
        e = t.build_exclusions(5)
        assert e.is_excluded(np.array([0]), np.array([1]))[0]
        assert e.is_excluded(np.array([0]), np.array([2]))[0]
        assert not e.is_excluded(np.array([0]), np.array([3]))[0]
        assert [0, 3] in e.pairs14.tolist()
        assert [1, 4] in e.pairs14.tolist()
        assert not e.is_excluded(np.array([0]), np.array([4]))[0]
        assert [0, 4] not in e.pairs14.tolist()

    def test_ring_shortest_path_wins(self):
        # 4-ring 0-1-2-3-0: atoms 0,2 are both 2 bonds apart both ways -> excluded
        t = Topology()
        for i, j in ((0, 1), (1, 2), (2, 3), (3, 0)):
            t.add_bond(i, j, STANDARD_BOND)
        e = t.build_exclusions(4)
        assert e.is_excluded(np.array([0]), np.array([2]))[0]
        assert len(e.pairs14) == 0

    def test_five_ring_no_14(self):
        # 5-ring: opposite atoms are 2 bonds away both directions
        t = Topology()
        for i in range(5):
            t.add_bond(i, (i + 1) % 5, STANDARD_BOND)
        e = t.build_exclusions(5)
        assert len(e.pairs14) == 0  # every non-bonded pair is 1-3

    def test_six_ring_14_pairs_are_para(self):
        t = Topology()
        for i in range(6):
            t.add_bond(i, (i + 1) % 6, STANDARD_BOND)
        e = t.build_exclusions(6)
        # para pairs (0,3), (1,4), (2,5) are exactly 3 bonds away
        assert sorted(map(tuple, e.pairs14.tolist())) == [(0, 3), (1, 4), (2, 5)]

    def test_symmetric_lookup(self):
        t = linear_chain(4)
        e = t.build_exclusions(4)
        assert e.is_excluded(np.array([2]), np.array([1]))[0]
        assert e.is_excluded(np.array([1]), np.array([2]))[0]

    def test_empty_topology(self):
        e = Topology().build_exclusions(5)
        assert e.n_excluded == 0
        assert not e.is_excluded(np.array([0]), np.array([1]))[0]

    def test_isolated_atoms_not_excluded(self):
        t = linear_chain(3)
        e = t.build_exclusions(6)  # atoms 3,4,5 unbonded
        assert not e.is_excluded(np.array([3]), np.array([4]))[0]
        assert not e.is_excluded(np.array([0]), np.array([5]))[0]

    @given(st.integers(4, 30))
    @settings(max_examples=15, deadline=None)
    def test_chain_exclusion_counts(self, n):
        """A linear n-chain has n-1 + n-2 exclusions and n-3 1-4 pairs."""
        t = linear_chain(n)
        e = t.build_exclusions(n)
        assert e.n_excluded == (n - 1) + (n - 2)
        assert len(e.pairs14) == n - 3

    def test_bond_out_of_range_raises(self):
        t = linear_chain(5)
        with pytest.raises(IndexError):
            t.build_exclusions(3)
