"""Ewald summation: Madelung constant, force gradients, parameter
independence (the energy must not depend on the alpha split)."""

import numpy as np
import pytest

from repro.builder.ions import ensure_ion_types
from repro.md.constants import COULOMB_CONSTANT
from repro.md.ewald import (
    EwaldOptions,
    clear_kspace_cache,
    compute_ewald,
    kspace_cache_stats,
)
from repro.md.forcefield import default_forcefield
from repro.md.system import MolecularSystem
from repro.md.topology import Topology


def rock_salt(ncell=2, a=5.64):
    ff = default_forcefield()
    ensure_ion_types(ff)
    pos, q, ti = [], [], []
    for i in range(2 * ncell):
        for j in range(2 * ncell):
            for k in range(2 * ncell):
                charge = 1.0 if (i + j + k) % 2 == 0 else -1.0
                pos.append([i, j, k])
                q.append(charge)
                ti.append(ff.atom_type_index("SOD" if charge > 0 else "CLA"))
    half = a / 2
    return MolecularSystem(
        positions=np.array(pos, float) * half,
        velocities=np.zeros((len(pos), 3)),
        charges=np.array(q),
        type_indices=np.array(ti),
        topology=Topology(),
        forcefield=ff,
        box=np.array([2 * ncell * half] * 3),
    )


def random_charges(n=12, box_side=14.0, seed=0, neutral=True):
    rng = np.random.default_rng(seed)
    ff = default_forcefield()
    ensure_ion_types(ff)
    q = rng.normal(size=n)
    if neutral:
        q -= q.mean()
    return MolecularSystem(
        positions=rng.random((n, 3)) * box_side,
        velocities=np.zeros((n, 3)),
        charges=q,
        type_indices=np.full(n, ff.atom_type_index("SOD")),
        topology=Topology(),
        forcefield=ff,
        box=np.array([box_side] * 3),
    )


class TestMadelung:
    def test_nacl_madelung_constant(self):
        s = rock_salt(ncell=2)
        res = compute_ewald(s, EwaldOptions(cutoff=5.6, kmax=10))
        n = s.n_atoms
        half = 5.64 / 2
        madelung = -res.energy * half / (COULOMB_CONSTANT * (n / 2))
        assert madelung == pytest.approx(1.74756, abs=2e-4)

    def test_lattice_forces_vanish_by_symmetry(self):
        s = rock_salt(ncell=2)
        res = compute_ewald(s, EwaldOptions(cutoff=5.6, kmax=10))
        assert np.abs(res.forces).max() < 1e-9


class TestAlphaIndependence:
    def test_energy_independent_of_split(self):
        """The real/reciprocal split parameter must not change the total."""
        s = random_charges()
        e = [
            compute_ewald(s, EwaldOptions(cutoff=7.0, alpha=a, kmax=12)).energy
            for a in (0.35, 0.45, 0.55)
        ]
        assert e[0] == pytest.approx(e[1], rel=1e-4)
        assert e[1] == pytest.approx(e[2], rel=1e-4)


class TestForces:
    def test_forces_match_numerical_gradient(self):
        s = random_charges(n=8, seed=3)
        opts = EwaldOptions(cutoff=6.5, kmax=8)
        res = compute_ewald(s, opts)
        h = 1e-5
        for atom in range(4):
            for d in range(3):
                orig = s.positions[atom, d]
                s.positions[atom, d] = orig + h
                ep = compute_ewald(s, opts).energy
                s.positions[atom, d] = orig - h
                em = compute_ewald(s, opts).energy
                s.positions[atom, d] = orig
                num = -(ep - em) / (2 * h)
                assert res.forces[atom, d] == pytest.approx(num, rel=2e-4, abs=1e-6)

    def test_net_force_zero(self):
        s = random_charges(seed=5)
        res = compute_ewald(s)
        np.testing.assert_allclose(res.forces.sum(axis=0), 0.0, atol=1e-8)


class TestExclusions:
    def test_excluded_pair_does_not_interact_directly(self):
        """Two bonded opposite charges: direct interaction removed; only
        their periodic images contribute (a small residual)."""
        from repro.md.forcefield import STANDARD_BOND

        ff = default_forcefield()
        ensure_ion_types(ff)
        topo = Topology()
        topo.add_bond(0, 1, STANDARD_BOND)
        box = 40.0
        s = MolecularSystem(
            positions=np.array([[20.0, 20.0, 20.0], [21.5, 20.0, 20.0]]),
            velocities=np.zeros((2, 3)),
            charges=np.array([1.0, -1.0]),
            type_indices=np.array([
                ff.atom_type_index("SOD"), ff.atom_type_index("CLA")
            ]),
            topology=topo,
            forcefield=ff,
            box=np.array([box] * 3),
        )
        res = compute_ewald(s, EwaldOptions(cutoff=12.0, kmax=8))
        bare = -COULOMB_CONSTANT / 1.5  # the excluded direct interaction
        # total must be far from the bare pair energy (it is excluded)
        assert abs(res.energy) < 0.2 * abs(bare)


class TestChargedSystems:
    def test_background_correction_applied(self):
        s = random_charges(neutral=False, seed=9)
        res = compute_ewald(s)
        assert res.energy_background != 0.0

    def test_neutral_system_no_background(self):
        s = random_charges(neutral=True, seed=9)
        res = compute_ewald(s)
        assert res.energy_background == pytest.approx(0.0, abs=1e-9)


class TestKspaceCache:
    """The (box, kmax, alpha) k-vector tables are built once and reused."""

    def setup_method(self):
        clear_kspace_cache()

    def test_identical_energies_on_cached_path(self):
        s = random_charges(seed=3)
        opts = EwaldOptions(cutoff=6.0, kmax=6)
        first = compute_ewald(s, opts)
        second = compute_ewald(s, opts)  # served from cache
        stats = kspace_cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 1
        assert second.energy == first.energy  # bit-identical, same tables
        assert np.array_equal(second.forces, first.forces)

    def test_repeated_calls_build_once(self):
        s = random_charges(seed=4)
        opts = EwaldOptions(cutoff=6.0, kmax=5)
        for _ in range(5):
            compute_ewald(s, opts)
        stats = kspace_cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 4

    def test_box_change_invalidates(self):
        s = random_charges(seed=5)
        opts = EwaldOptions(cutoff=6.0, kmax=5)
        compute_ewald(s, opts)
        s.box = s.box * 1.1  # volume change -> different k-vectors
        compute_ewald(s, opts)
        stats = kspace_cache_stats()
        assert stats["builds"] == 2

    def test_parameter_change_invalidates(self):
        s = random_charges(seed=6)
        compute_ewald(s, EwaldOptions(cutoff=6.0, kmax=5))
        compute_ewald(s, EwaldOptions(cutoff=6.0, kmax=6))
        compute_ewald(s, EwaldOptions(cutoff=6.0, kmax=5, alpha=0.4))
        assert kspace_cache_stats()["builds"] == 3

    def test_cached_result_matches_fresh_build(self):
        s = random_charges(seed=7)
        opts = EwaldOptions(cutoff=6.0, kmax=6)
        compute_ewald(s, opts)  # populate
        cached = compute_ewald(s, opts)  # hit
        clear_kspace_cache()
        fresh = compute_ewald(s, opts)  # rebuild from scratch
        assert cached.energy == pytest.approx(fresh.energy, rel=0, abs=0)
        assert np.array_equal(cached.forces, fresh.forces)

    def test_inplace_box_rescale_invalidates(self):
        # NPT-style barostat move: the box array is rescaled *in place*, so
        # the same ndarray object now holds different lengths.  The cache
        # key must be a value snapshot, not anything tied to the object —
        # a stale hit here would evaluate the new box with the old
        # k-vectors and silently corrupt the pressure coupling.
        s = random_charges(seed=8)
        opts = EwaldOptions(cutoff=6.0, kmax=5)
        compute_ewald(s, opts)  # populate at the original volume
        s.box *= 1.05  # in-place mutation, object identity unchanged
        mutated = compute_ewald(s, opts)
        assert kspace_cache_stats()["builds"] == 2, "stale k-space cache hit"
        clear_kspace_cache()
        fresh = compute_ewald(s, opts)
        assert mutated.energy == pytest.approx(fresh.energy, rel=0, abs=0)
        assert np.array_equal(mutated.forces, fresh.forces)


class TestExclusionPairCache:
    """The decoded (i, j) exclusion table is cached per Exclusions object."""

    def water(self):
        from repro.builder import small_water_box

        return small_water_box(27, seed=2, relax=False)

    def test_cached_decode_matches_fresh(self):
        s = self.water()
        excl = s.exclusions
        i_a, j_a = excl.excluded_pairs()
        # fresh decode straight from the sorted keys
        n = np.int64(excl.n_atoms)
        np.testing.assert_array_equal(i_a, excl.excluded_keys // n)
        np.testing.assert_array_equal(j_a, excl.excluded_keys % n)
        # second call serves the exact same (read-only) arrays
        i_b, j_b = excl.excluded_pairs()
        assert i_b is i_a and j_b is j_a
        assert not i_a.flags.writeable and not j_a.flags.writeable

    def test_cached_path_matches_uncached_ewald(self):
        """Regression: the correction with the cached table equals the one
        computed against a freshly rebuilt exclusions object."""
        s = self.water()
        opts = EwaldOptions(cutoff=6.0, kmax=4)
        s.exclusions.excluded_pairs()  # warm the cache
        warm = compute_ewald(s, opts)
        s.invalidate_exclusions()  # rebuild: brand-new Exclusions, cold cache
        cold = compute_ewald(s, opts)
        assert warm.energy_exclusion == pytest.approx(
            cold.energy_exclusion, rel=0, abs=0
        )
        assert np.array_equal(warm.forces, cold.forces)

    def test_topology_change_invalidates(self):
        s = self.water()
        old = s.exclusions
        old_pairs = old.excluded_pairs()
        s.invalidate_exclusions()
        new = s.exclusions
        assert new is not old
        assert getattr(new, "_pair_table", None) is None
        np.testing.assert_array_equal(new.excluded_pairs()[0], old_pairs[0])
