"""Segment-sum scatter: correctness and the index-validation contract.

Regression suite for the historical inconsistency between the two scatter
strategies: ``np.add.at`` silently *wraps* negative indices (Python-style)
while ``np.bincount`` raises — so the same bad index either corrupted row
``n-1`` or crashed depending on how full the scatter was.  Validation now
happens once at entry and raises the same ``ValueError`` on both paths.
"""

import numpy as np
import pytest

from repro.backend.reference import _BINCOUNT_MIN_FILL
from repro.md.scatter import accumulate_pair_forces, segment_add


def _manual(n, idx, contrib):
    out = np.zeros((n, 3))
    for k, i in enumerate(idx):
        out[i] += contrib[k]
    return out


class TestSegmentAdd:
    @pytest.mark.parametrize("m", [3, 200])  # add.at branch / bincount branch
    def test_matches_manual_loop(self, m):
        rng = np.random.default_rng(m)
        n = 40
        idx = rng.integers(0, n, size=m)
        contrib = rng.normal(size=(m, 3))
        out = np.zeros((n, 3))
        segment_add(out, idx, contrib)
        np.testing.assert_allclose(out, _manual(n, idx, contrib), rtol=1e-14)

    def test_accumulates_into_existing(self):
        out = np.ones((4, 3))
        segment_add(out, np.array([2, 2]), np.ones((2, 3)))
        assert np.all(out[2] == 3.0)
        assert np.all(out[0] == 1.0)

    def test_empty_contrib_is_noop(self):
        out = np.zeros((5, 3))
        segment_add(out, np.zeros(0, dtype=np.int64), np.zeros((0, 3)))
        assert np.all(out == 0.0)

    # ------------------------------------------------------------------ #
    # the bug: branch-dependent handling of out-of-range indices
    # ------------------------------------------------------------------ #
    def _branch_sizes(self, n):
        """(m_small, m_large): m forcing the add.at / bincount branch."""
        threshold = _BINCOUNT_MIN_FILL * n
        m_small = max(1, int(threshold) - 1)
        m_large = int(threshold) + 5
        assert m_small < threshold <= m_large
        return m_small, m_large

    @pytest.mark.parametrize("branch", ["add_at", "bincount"])
    def test_negative_index_raises_on_both_branches(self, branch):
        n = 32
        m_small, m_large = self._branch_sizes(n)
        m = m_small if branch == "add_at" else m_large
        idx = np.zeros(m, dtype=np.int64)
        idx[-1] = -1  # historically: silently wrapped to n-1 on add.at
        out = np.zeros((n, 3))
        with pytest.raises(ValueError, match=r"segment_add.*\[0, 32\)"):
            segment_add(out, idx, np.ones((m, 3)))
        assert np.all(out == 0.0), "failed scatter must not partially write"

    @pytest.mark.parametrize("branch", ["add_at", "bincount"])
    def test_too_large_index_raises_on_both_branches(self, branch):
        n = 32
        m_small, m_large = self._branch_sizes(n)
        m = m_small if branch == "add_at" else m_large
        idx = np.zeros(m, dtype=np.int64)
        idx[0] = n  # one past the end
        with pytest.raises(ValueError, match="segment_add"):
            segment_add(np.zeros((n, 3)), idx, np.ones((m, 3)))

    def test_error_message_reports_observed_range(self):
        with pytest.raises(ValueError, match=r"\[-3, 2\]"):
            segment_add(
                np.zeros((8, 3)),
                np.array([-3, 2]),
                np.ones((2, 3)),
            )


class TestAccumulatePairForces:
    def test_newtons_third_law(self):
        rng = np.random.default_rng(0)
        n, m = 20, 60
        i = rng.integers(0, n, size=m)
        j = rng.integers(0, n, size=m)
        fvec = rng.normal(size=(m, 3))
        forces = np.zeros((n, 3))
        accumulate_pair_forces(forces, i, j, fvec)
        np.testing.assert_allclose(
            forces.sum(axis=0), np.zeros(3), atol=1e-12
        )

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError, match="segment_add"):
            accumulate_pair_forces(
                np.zeros((4, 3)),
                np.array([0]),
                np.array([4]),
                np.ones((1, 3)),
            )
