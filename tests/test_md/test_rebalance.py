"""Measurement-based rebalancing of the real parallel engine.

The determinism contract under test: remap points are step-indexed and the
force reduction is assignment-independent, so runs stay bit-identical and
sequential-equivalent even though the task->worker map is rebuilt from
noisy wall-clock measurements mid-run.
"""

import numpy as np
import pytest

from repro.builder import skewed_water_box, small_water_box
from repro.instrument import WorkDB
from repro.md.engine import SequentialEngine
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import HAS_SHARED_MEMORY, ParallelEngine, ParallelNonbonded

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="multiprocessing.shared_memory unavailable"
)

OPTS = NonbondedOptions(cutoff=6.0)


@pytest.fixture(scope="module")
def water150():
    return small_water_box(150, seed=3)


@pytest.fixture(scope="module")
def skewed150():
    return skewed_water_box(150, seed=3, skew=2.0, relax=False)


def run_parallel(system, n_steps, **kwargs):
    """Run a fresh engine on a copy; return (positions, engine diagnostics)."""
    eng = ParallelEngine(system.copy(), options=OPTS, workers=2, skin=1.0, **kwargs)
    try:
        reports = eng.run(n_steps)
        return (
            eng.system.positions.copy(),
            reports,
            list(eng.remap_steps),
            [dict(r) for r in eng.rebalance_log],
        )
    finally:
        eng.close()


def run_sequential(system, n_steps):
    eng = SequentialEngine(system.copy(), options=OPTS)
    reports = eng.run(n_steps)
    return eng.system.positions.copy(), reports


class TestRemapDeterminism:
    def test_rebalancing_run_remaps_at_least_twice(self, water150):
        _, _, remaps, log = run_parallel(
            water150, 12, rebalance_every=4, slowdown={0: 3.0}
        )
        assert len(log) >= 2, "two LB decisions expected in 12 steps"
        assert len(remaps) >= 2, "slowdown must force actual task migration"
        # remap points are step-indexed: installed at the dispatch after the
        # decision, strictly increasing
        assert remaps == sorted(set(remaps))

    def test_repeated_runs_bit_identical(self, water150):
        """Timing samples differ between runs; trajectories must not."""
        pos_a, rep_a, remaps_a, _ = run_parallel(
            water150, 12, rebalance_every=4, slowdown={0: 3.0}
        )
        pos_b, rep_b, remaps_b, _ = run_parallel(
            water150, 12, rebalance_every=4, slowdown={0: 3.0}
        )
        assert remaps_a == remaps_b
        assert np.array_equal(pos_a, pos_b)
        for a, b in zip(rep_a, rep_b):
            assert a.potential == b.potential
            assert a.kinetic == b.kinetic

    def test_agrees_with_sequential_across_remaps(self, water150):
        """Forces (and hence the trajectory) stay within 1e-9 of the
        sequential engine across >= 2 remap events."""
        pos_par, rep_par, remaps, _ = run_parallel(
            water150, 12, rebalance_every=4, slowdown={0: 3.0}
        )
        assert len(remaps) >= 2
        pos_seq, rep_seq = run_sequential(water150, 12)
        for p, s in zip(rep_par, rep_seq):
            assert p.potential == pytest.approx(s.potential, rel=1e-9)
            assert p.kinetic == pytest.approx(s.kinetic, rel=1e-9)
        np.testing.assert_allclose(pos_par, pos_seq, rtol=1e-9, atol=1e-9)

    def test_static_run_never_remaps(self, water150):
        _, _, remaps, log = run_parallel(water150, 5, rebalance_every=0)
        assert remaps == []
        assert log == []


class TestLoadShrink:
    def test_refine_shrinks_max_worker_load(self, skewed150):
        """On the skewed box with a 5x-slowed worker 0, one refinement pass
        must cut the predicted max-worker load by at least 20%.

        ``rebalance_every=8`` matches the WorkDB measurement window, so the
        first decision sees pure measurements (the cost-model prior's blend
        weight has reached zero) and the full injected imbalance.  The 5x
        factor keeps the signal far above host scheduling jitter."""
        _, _, _, log = run_parallel(
            skewed150,
            9,
            rebalance_every=8,
            lb_strategy="refine",
            slowdown={0: 5.0},
        )
        assert log, "at least one LB decision expected"
        first = log[0]
        assert first["strategy"] == "refine"
        assert first["moved"] > 0
        assert first["max_load_after"] <= 0.8 * first["max_load_before"]
        assert first["imbalance_ratio_after"] < first["imbalance_ratio_before"]

    def test_slowdown_creates_measurable_imbalance(self, water150):
        """The fault-injection hook itself: a slowed worker's measured load
        dominates without any rebalancing."""
        eng = ParallelEngine(
            water150.copy(), options=OPTS, workers=2, skin=1.0,
            slowdown={0: 3.0},
        )
        try:
            eng.run(3)
            loads = eng._nb.worker_loads()
        finally:
            eng.close()
        assert loads[0] > 1.5 * loads[1]

    def test_greedy_then_refine_default_schedule(self, water150):
        _, _, _, log = run_parallel(
            water150, 10, rebalance_every=4, slowdown={0: 2.0}
        )
        assert [r["strategy"] for r in log[:2]] == ["greedy", "refine"]


class TestWorkDBIntegration:
    def test_engine_workdb_dump_round_trip(self, water150, tmp_path):
        eng = ParallelEngine(
            water150.copy(), options=OPTS, workers=2, skin=1.0,
        )
        try:
            eng.run(3)
            db = eng.workdb
            assert db.measured_steps >= 3
            path = tmp_path / "workdb.json"
            db.dump(path)
            loads = db.owner_loads(2)
        finally:
            eng.close()
        clone = WorkDB.load_file(path)
        np.testing.assert_array_equal(clone.owner_loads(2), loads)
        assert all(rec.n_samples >= 3 for rec in clone.tasks.values())

    def test_every_task_measured_every_step(self, water150):
        eng = ParallelEngine(water150.copy(), options=OPTS, workers=2, skin=1.0)
        try:
            eng.run(2)
            db = eng.workdb
            n_tasks = len(eng._nb._tasks)
            assert len(db.tasks) == n_tasks
            # priors came from the cost model at startup
            assert all(rec.prior > 0 for rec in db.tasks.values())
        finally:
            eng.close()


class TestValidation:
    def test_negative_rebalance_every_rejected(self, water150):
        with pytest.raises(ValueError):
            ParallelNonbonded(water150.copy(), OPTS, n_workers=2, rebalance_every=-1)

    def test_unknown_strategy_rejected(self, water150):
        with pytest.raises(ValueError):
            ParallelNonbonded(
                water150.copy(), OPTS, n_workers=2,
                rebalance_every=5, lb_strategy="nope",
            )

    def test_nonpositive_slowdown_rejected(self, water150):
        with pytest.raises(ValueError):
            ParallelNonbonded(
                water150.copy(), OPTS, n_workers=2, slowdown={0: 0.0}
            )
