"""Multiple live pools in one process: no cross-talk, no leaks.

The segment registry gives every pool collision-free shared-memory names
(pid + random token prefix), so two engines — or an engine plus any other
``repro.pool`` client — can coexist and tear down independently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.md.engine import SequentialEngine
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import HAS_SHARED_MEMORY, ParallelEngine
from repro.pool import attach_segment

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="platform lacks multiprocessing.shared_memory"
)

OPTS = NonbondedOptions(cutoff=8.0)


@pytest.fixture(scope="module")
def water600():
    return small_water_box(600, seed=7, relax=False)


@pytest.fixture(scope="module")
def water400():
    return small_water_box(400, seed=11, relax=False)


def test_two_engines_coexist_without_crosstalk(water600, water400):
    ref_a = SequentialEngine(water600.copy(), OPTS, pairlist=None).compute_forces()
    ref_b = SequentialEngine(water400.copy(), OPTS, pairlist=None).compute_forces()
    with ParallelEngine(water600.copy(), options=OPTS, workers=2) as eng_a:
        with ParallelEngine(water400.copy(), options=OPTS, workers=2) as eng_b:
            assert eng_a.parallel and eng_b.parallel
            # disjoint shared-memory names
            names_a = set(eng_a._nb._pool._registry.names().values())
            names_b = set(eng_b._nb._pool._registry.names().values())
            assert not (names_a & names_b)
            # interleave evaluations; each pool must see only its system
            for _ in range(2):
                f_a = eng_a.compute_forces()
                f_b = eng_b.compute_forces()
            scale_a = np.abs(ref_a).max()
            scale_b = np.abs(ref_b).max()
            assert np.allclose(f_a, ref_a, rtol=1e-9, atol=1e-9 * scale_a)
            assert np.allclose(f_b, ref_b, rtol=1e-9, atol=1e-9 * scale_b)


def test_closing_one_engine_leaves_the_other_live(water600, water400):
    eng_a = ParallelEngine(water600.copy(), options=OPTS, workers=2)
    eng_b = ParallelEngine(water400.copy(), options=OPTS, workers=2)
    try:
        f_before = eng_b.compute_forces()
        eng_a.close()
        assert not eng_a.parallel
        assert eng_b.parallel
        f_after = eng_b.compute_forces()
        np.testing.assert_array_equal(f_before, f_after)
    finally:
        eng_a.close()
        eng_b.close()


def test_segments_unlinked_after_close(water400):
    # the leak check: every shared-memory name a pool created must be gone
    # from the OS once the engine closes
    eng = ParallelEngine(water400.copy(), options=OPTS, workers=2)
    assert eng.parallel
    names = list(eng._nb._pool._registry.names().values())
    assert names
    eng.compute_forces()
    eng.close()
    for name in names:
        with pytest.raises(FileNotFoundError):
            attach_segment(name)
