"""Multiple live pools in one process: no cross-talk, no leaks.

The segment registry gives every pool collision-free shared-memory names
(pid + random token prefix), so two engines — or an engine plus any other
``repro.pool`` client — can coexist and tear down independently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.md.engine import SequentialEngine
from repro.md.nonbonded import NonbondedOptions
from repro.md.parallel import HAS_SHARED_MEMORY, ParallelEngine
from repro.pool import attach_segment

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="platform lacks multiprocessing.shared_memory"
)

OPTS = NonbondedOptions(cutoff=8.0)


@pytest.fixture(scope="module")
def water600():
    return small_water_box(600, seed=7, relax=False)


@pytest.fixture(scope="module")
def water400():
    return small_water_box(400, seed=11, relax=False)


def test_two_engines_coexist_without_crosstalk(water600, water400):
    ref_a = SequentialEngine(water600.copy(), OPTS, pairlist=None).compute_forces()
    ref_b = SequentialEngine(water400.copy(), OPTS, pairlist=None).compute_forces()
    with ParallelEngine(water600.copy(), options=OPTS, workers=2) as eng_a:
        with ParallelEngine(water400.copy(), options=OPTS, workers=2) as eng_b:
            assert eng_a.parallel and eng_b.parallel
            # disjoint shared-memory names
            names_a = set(eng_a._nb._pool._registry.names().values())
            names_b = set(eng_b._nb._pool._registry.names().values())
            assert not (names_a & names_b)
            # interleave evaluations; each pool must see only its system
            for _ in range(2):
                f_a = eng_a.compute_forces()
                f_b = eng_b.compute_forces()
            scale_a = np.abs(ref_a).max()
            scale_b = np.abs(ref_b).max()
            assert np.allclose(f_a, ref_a, rtol=1e-9, atol=1e-9 * scale_a)
            assert np.allclose(f_b, ref_b, rtol=1e-9, atol=1e-9 * scale_b)


def test_closing_one_engine_leaves_the_other_live(water600, water400):
    eng_a = ParallelEngine(water600.copy(), options=OPTS, workers=2)
    eng_b = ParallelEngine(water400.copy(), options=OPTS, workers=2)
    try:
        f_before = eng_b.compute_forces()
        eng_a.close()
        assert not eng_a.parallel
        assert eng_b.parallel
        f_after = eng_b.compute_forces()
        np.testing.assert_array_equal(f_before, f_after)
    finally:
        eng_a.close()
        eng_b.close()


def test_sequential_engines_kspace_accounting_isolated():
    # regression: the k-space LRU counters were process-global, so one
    # engine's clear_kspace_cache() yanked another engine's stats backwards
    # (the exact multi-job service hazard).  Per-engine views must stay
    # monotone, non-negative, and exactly attributed.
    from repro.md.ewald import EwaldOptions

    ew = EwaldOptions(cutoff=6.0, kmax=4)
    opts = NonbondedOptions(cutoff=6.0)
    eng_a = SequentialEngine(
        small_water_box(40, seed=3, relax=False), opts, pairlist=None, ewald=ew
    )
    eng_b = SequentialEngine(
        small_water_box(30, seed=5, relax=False), opts, pairlist=None, ewald=ew
    )
    eng_a.compute_forces()
    eng_a.compute_forces()  # same box: second evaluation hits the cache
    before = eng_a.kspace_cache_stats()
    assert before["builds"] == 1 and before["hits"] == 1
    eng_b.compute_forces()
    eng_b.clear_kspace_cache()  # job B resets *its* accounting
    after = eng_a.kspace_cache_stats()
    assert after == before  # B's clear is invisible to A
    assert all(v >= 0 for v in after.values())
    # the shared tables really were dropped: A's next evaluation rebuilds,
    # and the build lands in A's accounting only
    eng_a.compute_forces()
    assert eng_a.kspace_cache_stats()["builds"] == before["builds"] + 1
    assert eng_b.kspace_cache_stats() == {"builds": 0, "hits": 0}


def test_parallel_engines_kspace_accounting_isolated(water600, water400):
    # same hazard, through the parallel engine's driver-side accounting
    # (distribute=False keeps the reciprocal sum on the driver)
    from repro.md.ewald import EwaldOptions

    ew = EwaldOptions(cutoff=8.0, kmax=4)
    with ParallelEngine(
        water600.copy(), options=OPTS, workers=2, ewald=ew
    ) as eng_a:
        with ParallelEngine(
            water400.copy(), options=OPTS, workers=2, ewald=ew
        ) as eng_b:
            eng_a.compute_forces()
            eng_a.compute_forces()
            before = eng_a.kspace_cache_stats()
            assert before["driver"]["builds"] >= 1
            assert before["driver"]["hits"] >= 1
            eng_b.compute_forces()
            eng_b.clear_kspace_cache()
            after = eng_a.kspace_cache_stats()
            assert after["driver"] == before["driver"]
            assert after["worker_builds"] >= 0
            assert after["worker_hits"] >= 0
            eng_a.compute_forces()
            final = eng_a.kspace_cache_stats()
            assert final["driver"]["builds"] == before["driver"]["builds"] + 1
            assert eng_b.kspace_cache_stats()["driver"] == {
                "builds": 0,
                "hits": 0,
            }


def test_segments_unlinked_after_close(water400):
    # the leak check: every shared-memory name a pool created must be gone
    # from the OS once the engine closes
    eng = ParallelEngine(water400.copy(), options=OPTS, workers=2)
    assert eng.parallel
    names = list(eng._nb._pool._registry.names().values())
    assert names
    eng.compute_forces()
    eng.close()
    for name in names:
        with pytest.raises(FileNotFoundError):
            attach_segment(name)
