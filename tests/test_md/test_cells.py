"""Cell grid and candidate pair coverage (must find every in-cutoff pair)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.cells import HALF_SHELL_OFFSETS, CellGrid, candidate_pairs
from repro.util.pbc import minimum_image, wrap_positions


def brute_force_pairs(pos, box, cutoff):
    n = len(pos)
    found = set()
    for i in range(n):
        delta = minimum_image(pos[i + 1 :] - pos[i], box)
        r2 = np.einsum("ij,ij->i", delta, delta)
        for j in np.flatnonzero(r2 < cutoff * cutoff):
            found.add((i, i + 1 + int(j)))
    return found


class TestHalfShell:
    def test_thirteen_offsets(self):
        assert HALF_SHELL_OFFSETS.shape == (13, 3)

    def test_lexicographically_positive(self):
        for off in HALF_SHELL_OFFSETS:
            assert tuple(off) > (0, 0, 0)

    def test_union_with_negations_covers_26(self):
        s = {tuple(o) for o in HALF_SHELL_OFFSETS}
        s |= {tuple(-o) for o in HALF_SHELL_OFFSETS}
        assert len(s) == 26


class TestCellGrid:
    def test_build_assigns_all_atoms(self):
        rng = np.random.default_rng(0)
        box = np.array([30.0, 30.0, 30.0])
        pos = wrap_positions(rng.random((100, 3)) * box, box)
        grid = CellGrid.build(pos, box, cutoff=10.0)
        total = sum(len(grid.atoms_in_cell(c)) for c in range(grid.n_cells))
        assert total == 100

    def test_dims_at_least_one(self):
        box = np.array([5.0, 5.0, 5.0])
        pos = np.array([[1.0, 1.0, 1.0]])
        grid = CellGrid.build(pos, box, cutoff=10.0)
        assert grid.n_cells == 1

    def test_flat_coords_roundtrip(self):
        box = np.array([30.0, 40.0, 50.0])
        pos = np.zeros((1, 3))
        grid = CellGrid.build(pos, box, cutoff=10.0)
        for c in range(grid.n_cells):
            assert grid.flat_index(*grid.cell_coords(c)) == c

    def test_rejects_nonpositive_cutoff(self):
        with pytest.raises(ValueError):
            CellGrid.build(np.zeros((1, 3)), np.ones(3), 0.0)

    def test_neighbor_pairs_unique(self):
        box = np.array([30.0, 30.0, 30.0])
        grid = CellGrid.build(np.zeros((1, 3)), box, 10.0)
        pairs = grid.neighbor_cell_pairs()
        assert len(pairs) == len(set(pairs))

    def test_small_grid_no_duplicate_neighbor_pairs(self):
        # dims (2,2,2): wrapping makes many offsets alias; must dedupe
        box = np.array([20.0, 20.0, 20.0])
        grid = CellGrid.build(np.zeros((1, 3)), box, 10.0)
        pairs = grid.neighbor_cell_pairs()
        for a, b in pairs:
            assert a <= b
        assert len(pairs) == len(set(pairs))


class TestCandidatePairCoverage:
    @pytest.mark.parametrize("n,cutoff,side", [(60, 5.0, 20.0), (40, 8.0, 18.0), (25, 3.0, 9.5)])
    def test_covers_brute_force(self, n, cutoff, side):
        rng = np.random.default_rng(n)
        box = np.array([side, side, side])
        pos = wrap_positions(rng.random((n, 3)) * box, box)
        i, j = candidate_pairs(pos, box, cutoff)
        cand = {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}
        assert len(cand) == len(i), "candidate pairs must be unique"
        ref = brute_force_pairs(pos, box, cutoff)
        assert ref <= cand, f"missing pairs: {ref - cand}"

    def test_empty_input(self):
        i, j = candidate_pairs(np.zeros((0, 3)), np.ones(3) * 10, 3.0)
        assert len(i) == len(j) == 0

    def test_single_atom(self):
        i, j = candidate_pairs(np.zeros((1, 3)), np.ones(3) * 10, 3.0)
        assert len(i) == 0

    @given(st.integers(2, 40), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_coverage(self, n, seed):
        rng = np.random.default_rng(seed)
        box = np.array([15.0, 12.0, 18.0])
        cutoff = 4.0
        pos = wrap_positions(rng.random((n, 3)) * box, box)
        i, j = candidate_pairs(pos, box, cutoff)
        cand = {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}
        assert brute_force_pairs(pos, box, cutoff) <= cand
