"""Cell grid and candidate pair coverage (must find every in-cutoff pair)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.cells import (
    HALF_SHELL_OFFSETS,
    CellGrid,
    _candidate_pairs_reference,
    candidate_pairs,
    count_pairs_within,
)
from repro.util.pbc import minimum_image, wrap_positions


def pair_keys(i, j, n):
    """Canonical sorted keys of an unordered pair set (for exact matching)."""
    lo = np.minimum(i, j).astype(np.int64)
    hi = np.maximum(i, j).astype(np.int64)
    return np.sort(lo * max(n, 1) + hi)


def brute_force_pairs(pos, box, cutoff):
    n = len(pos)
    found = set()
    for i in range(n):
        delta = minimum_image(pos[i + 1 :] - pos[i], box)
        r2 = np.einsum("ij,ij->i", delta, delta)
        for j in np.flatnonzero(r2 < cutoff * cutoff):
            found.add((i, i + 1 + int(j)))
    return found


class TestHalfShell:
    def test_thirteen_offsets(self):
        assert HALF_SHELL_OFFSETS.shape == (13, 3)

    def test_lexicographically_positive(self):
        for off in HALF_SHELL_OFFSETS:
            assert tuple(off) > (0, 0, 0)

    def test_union_with_negations_covers_26(self):
        s = {tuple(o) for o in HALF_SHELL_OFFSETS}
        s |= {tuple(-o) for o in HALF_SHELL_OFFSETS}
        assert len(s) == 26


class TestCellGrid:
    def test_build_assigns_all_atoms(self):
        rng = np.random.default_rng(0)
        box = np.array([30.0, 30.0, 30.0])
        pos = wrap_positions(rng.random((100, 3)) * box, box)
        grid = CellGrid.build(pos, box, cutoff=10.0)
        total = sum(len(grid.atoms_in_cell(c)) for c in range(grid.n_cells))
        assert total == 100

    def test_dims_at_least_one(self):
        box = np.array([5.0, 5.0, 5.0])
        pos = np.array([[1.0, 1.0, 1.0]])
        grid = CellGrid.build(pos, box, cutoff=10.0)
        assert grid.n_cells == 1

    def test_flat_coords_roundtrip(self):
        box = np.array([30.0, 40.0, 50.0])
        pos = np.zeros((1, 3))
        grid = CellGrid.build(pos, box, cutoff=10.0)
        for c in range(grid.n_cells):
            assert grid.flat_index(*grid.cell_coords(c)) == c

    def test_rejects_nonpositive_cutoff(self):
        with pytest.raises(ValueError):
            CellGrid.build(np.zeros((1, 3)), np.ones(3), 0.0)

    def test_neighbor_pairs_unique(self):
        box = np.array([30.0, 30.0, 30.0])
        grid = CellGrid.build(np.zeros((1, 3)), box, 10.0)
        pairs = grid.neighbor_cell_pairs()
        assert len(pairs) == len(set(pairs))

    def test_small_grid_no_duplicate_neighbor_pairs(self):
        # dims (2,2,2): wrapping makes many offsets alias; must dedupe
        box = np.array([20.0, 20.0, 20.0])
        grid = CellGrid.build(np.zeros((1, 3)), box, 10.0)
        pairs = grid.neighbor_cell_pairs()
        for a, b in pairs:
            assert a <= b
        assert len(pairs) == len(set(pairs))


class TestCandidatePairCoverage:
    @pytest.mark.parametrize("n,cutoff,side", [(60, 5.0, 20.0), (40, 8.0, 18.0), (25, 3.0, 9.5)])
    def test_covers_brute_force(self, n, cutoff, side):
        rng = np.random.default_rng(n)
        box = np.array([side, side, side])
        pos = wrap_positions(rng.random((n, 3)) * box, box)
        i, j = candidate_pairs(pos, box, cutoff)
        cand = {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}
        assert len(cand) == len(i), "candidate pairs must be unique"
        ref = brute_force_pairs(pos, box, cutoff)
        assert ref <= cand, f"missing pairs: {ref - cand}"

    def test_empty_input(self):
        i, j = candidate_pairs(np.zeros((0, 3)), np.ones(3) * 10, 3.0)
        assert len(i) == len(j) == 0

    def test_single_atom(self):
        i, j = candidate_pairs(np.zeros((1, 3)), np.ones(3) * 10, 3.0)
        assert len(i) == 0

    @given(st.integers(2, 40), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_coverage(self, n, seed):
        rng = np.random.default_rng(seed)
        box = np.array([15.0, 12.0, 18.0])
        cutoff = 4.0
        pos = wrap_positions(rng.random((n, 3)) * box, box)
        i, j = candidate_pairs(pos, box, cutoff)
        cand = {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}
        assert brute_force_pairs(pos, box, cutoff) <= cand


class TestUnwrappedPositions:
    """Regression tests: CellGrid.build wraps instead of clamping."""

    def test_negative_coordinates_straddle_boundary(self):
        # A at x=-4.5 truly sits at x=15.5 (cell 3 of 5); C at x=13.0 is
        # 2.5 A away across the boundary.  The old clamp put A into cell 0,
        # which is not a neighbour of cell 3, silently dropping the pair.
        box = np.array([20.0, 20.0, 20.0])
        pos = np.array([[-4.5, 1.0, 1.0], [13.0, 1.0, 1.0]])
        i, j = candidate_pairs(pos, box, 4.0)
        assert len(i) == 1

    def test_unwrapped_matches_wrapped_enumeration(self):
        rng = np.random.default_rng(5)
        box = np.array([18.0, 15.0, 21.0])
        pos = rng.random((50, 3)) * box
        shifted = pos + np.array([-2.0, 1.0, -3.0]) * box  # several images away
        for cutoff in (3.0, 5.0):
            iw, jw = candidate_pairs(pos, box, cutoff)
            iu, ju = candidate_pairs(shifted, box, cutoff)
            assert np.array_equal(pair_keys(iw, jw, 50), pair_keys(iu, ju, 50))

    def test_build_bins_negative_position_into_true_cell(self):
        box = np.array([20.0, 20.0, 20.0])
        grid = CellGrid.build(np.array([[-4.5, 1.0, 1.0]]), box, 4.0)
        assert grid.cell_coords(int(grid.cell_of_atom[0]))[0] == 3


class TestVectorizedEnumeration:
    """The vectorized path must reproduce the reference loop exactly."""

    @pytest.mark.parametrize(
        "n,side,cutoff",
        [
            (80, 18.0, 5.0),   # multi-cell grid
            (40, 9.5, 3.0),    # 3x3x3
            (25, 6.0, 4.0),    # dims 1: all offsets alias
            (30, 8.5, 4.0),    # dims 2: half the offsets alias
            (300, 25.0, 6.0),  # enough atoms for multi-atom cells
            (2, 50.0, 3.0),
            (1, 10.0, 3.0),
        ],
    )
    def test_exact_match_with_reference(self, n, side, cutoff):
        rng = np.random.default_rng(n * 7 + 1)
        box = np.array([side, side * 0.9 + 1.0, side * 1.1 + 1.0])
        pos = rng.random((n, 3)) * box - box / 3.0  # deliberately unwrapped
        i_vec, j_vec = candidate_pairs(pos, box, cutoff)
        i_ref, j_ref = _candidate_pairs_reference(pos, box, cutoff)
        assert len(i_vec) == len(i_ref)
        assert np.array_equal(pair_keys(i_vec, j_vec, n), pair_keys(i_ref, j_ref, n))

    def test_neighbor_pair_arrays_match_python_loop(self):
        def loop_reference(grid):
            pairs = set()
            for flat in range(grid.n_cells):
                ix, iy, iz = grid.cell_coords(flat)
                pairs.add((flat, flat))
                for dx, dy, dz in HALF_SHELL_OFFSETS:
                    other = grid.flat_index(ix + int(dx), iy + int(dy), iz + int(dz))
                    if other != flat:
                        pairs.add((min(flat, other), max(flat, other)))
            return sorted(pairs)

        for box, cutoff in [
            (np.array([30.0, 30.0, 30.0]), 10.0),  # 3x3x3
            (np.array([20.0, 20.0, 20.0]), 10.0),  # 2x2x2 aliasing
            (np.array([5.0, 50.0, 20.0]), 5.0),    # mixed 1/10/4 dims
            (np.array([60.0, 60.0, 60.0]), 7.0),
        ]:
            grid = CellGrid.build(np.zeros((1, 3)), box, cutoff)
            assert grid.neighbor_cell_pairs() == loop_reference(grid)

    def test_chunked_emission_boundaries(self, monkeypatch):
        # tiny chunk: many chunk boundaries plus single rows larger than one
        # chunk, the regression case for the chunk-split off-by-one
        import repro.md.cells as cells_mod

        monkeypatch.setattr(cells_mod, "_PAIR_CHUNK", 32)
        rng = np.random.default_rng(23)
        box = np.array([12.0, 12.0, 12.0])
        pos = rng.random((150, 3)) * box
        i_vec, j_vec = candidate_pairs(pos, box, 6.0)  # dims 2: dense cells
        i_ref, j_ref = _candidate_pairs_reference(pos, box, 6.0)
        assert np.array_equal(pair_keys(i_vec, j_vec, 150), pair_keys(i_ref, j_ref, 150))

    def test_count_pairs_within_matches_brute_force(self):
        from repro.md.nonbonded import count_interacting_pairs

        rng = np.random.default_rng(17)
        box = np.array([16.0, 14.0, 19.0])
        pos = rng.random((120, 3)) * box
        for cutoff in (3.0, 4.5, 7.0):
            assert count_pairs_within(pos, box, cutoff) == count_interacting_pairs(
                pos, None, box, cutoff
            )
