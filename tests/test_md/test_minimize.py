"""Steepest-descent minimizer."""

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.md.minimize import minimize
from repro.md.nonbonded import NonbondedOptions


class TestMinimize:
    def test_reduces_energy(self):
        s = small_water_box(27, seed=12, relax=False)
        res = minimize(s, NonbondedOptions(cutoff=5.0), max_iterations=50)
        assert res.final_energy <= res.initial_energy

    def test_monotone_nonincreasing_api(self):
        s = small_water_box(27, seed=12, relax=False)
        r1 = minimize(s, NonbondedOptions(cutoff=5.0), max_iterations=20)
        r2 = minimize(s, NonbondedOptions(cutoff=5.0), max_iterations=20)
        assert r2.initial_energy == pytest.approx(r1.final_energy, rel=1e-9)
        assert r2.final_energy <= r2.initial_energy

    def test_converged_flag_on_easy_system(self):
        s = small_water_box(8, seed=2, relax=False)
        res = minimize(
            s, NonbondedOptions(cutoff=4.0), max_iterations=500, force_tolerance=30.0
        )
        assert res.converged
        assert res.max_force < 30.0

    def test_max_displacement_respected(self):
        s = small_water_box(27, seed=12, relax=False)
        before = s.positions.copy()
        minimize(s, NonbondedOptions(cutoff=5.0), max_iterations=1, max_displacement=0.1)
        moved = np.linalg.norm(s.positions - before, axis=1)
        assert moved.max() <= 0.1 + 1e-9
