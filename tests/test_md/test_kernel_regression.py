"""Regression protection for the non-bonded kernel the hot path rewires.

Two independent checks: the analytic derivatives of
:func:`repro.md.nonbonded.pair_interactions` (LJ switching + shifted
Coulomb) against central finite differences on random pair sets, and an
energy-conservation drift bound over 200 NVE steps of the full engine.
"""

import numpy as np
import pytest

from repro.builder import small_water_box
from repro.md.engine import SequentialEngine
from repro.md.integrator import VelocityVerlet
from repro.md.nonbonded import NonbondedOptions, pair_interactions


def _pair_energy(delta, eps, rmin, qq, options):
    r2 = np.einsum("ij,ij->i", delta, delta)
    e_lj, e_el, _ = pair_interactions(delta, r2, eps, rmin, qq, options)
    return e_lj + e_el


class TestFiniteDifferenceForces:
    """fvec must equal -dE/dx_i for delta = x_j - x_i."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_pairs(self, seed):
        rng = np.random.default_rng(seed)
        options = NonbondedOptions(cutoff=6.0, switch_dist=4.5)
        m = 40
        # distances spanning the LJ well, the switching region and the
        # shifted-Coulomb tail (avoid r ~ 0 and r ~ cutoff where the FD
        # stencil straddles the piecewise boundary)
        r = rng.uniform(1.8, 5.8, m)
        direction = rng.normal(size=(m, 3))
        direction /= np.linalg.norm(direction, axis=1)[:, None]
        delta = r[:, None] * direction
        eps = rng.uniform(0.05, 0.3, m)
        rmin = rng.uniform(2.5, 4.0, m)
        qq = rng.uniform(-0.5, 0.5, m)

        r2 = np.einsum("ij,ij->i", delta, delta)
        _, _, fvec = pair_interactions(delta, r2, eps, rmin, qq, options)

        h = 1e-6
        for axis in range(3):
            # moving atom i by +h decreases delta = x_j - x_i by h
            dplus = delta.copy()
            dplus[:, axis] -= h
            dminus = delta.copy()
            dminus[:, axis] += h
            e_plus = _pair_energy(dplus, eps, rmin, qq, options)
            e_minus = _pair_energy(dminus, eps, rmin, qq, options)
            f_numeric = -(e_plus - e_minus) / (2.0 * h)
            np.testing.assert_allclose(
                fvec[:, axis], f_numeric, rtol=5e-5, atol=5e-7,
                err_msg=f"axis {axis}: analytic force != -dE/dx_i",
            )

    def test_forces_vanish_at_cutoff(self):
        options = NonbondedOptions(cutoff=6.0, switch_dist=4.5)
        delta = np.array([[5.999999, 0.0, 0.0], [6.5, 0.0, 0.0]])
        r2 = np.einsum("ij,ij->i", delta, delta)
        e_lj, e_el, fvec = pair_interactions(
            delta, r2, np.full(2, 0.2), np.full(2, 3.5), np.full(2, 0.25), options
        )
        assert abs(e_lj[0]) < 1e-8 and abs(e_el[0]) < 1e-10
        assert np.all(np.abs(fvec[0]) < 1e-4)


class TestEnergyConservation:
    def test_nve_drift_bound_200_steps(self):
        """Total energy drift stays bounded over 200 NVE steps.

        Runs with the default Verlet pairlist — exactly the production hot
        path — so a force/pairlist inconsistency (stale list, wrong sign,
        broken scatter) shows up as secular drift.
        """
        system = small_water_box(64, seed=3)
        system.assign_velocities(300.0, seed=11)
        engine = SequentialEngine(
            system,
            NonbondedOptions(cutoff=5.0, switch_dist=4.0),
            VelocityVerlet(dt=0.5),
        )
        first = engine.step()
        e0 = first.total
        totals = [rep.total for rep in engine.run(200)]
        rel_dev = np.abs(np.array(totals) - e0) / abs(e0)
        assert rel_dev.max() < 5e-3, f"max relative drift {rel_dev.max():.2e}"
        # secular drift (trend, not just fluctuation) must be even smaller
        assert abs(totals[-1] - e0) / abs(e0) < 5e-3
        assert engine.pairlist.reuse_fraction > 0.3
