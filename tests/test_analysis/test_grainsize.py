"""Grainsize histograms (Figures 1-2)."""

import numpy as np
import pytest

from repro.analysis.grainsize import (
    format_histogram,
    grainsize_histogram,
    histogram_from_descriptors,
)
from repro.core.computes import GrainsizeConfig, build_nonbonded_computes
from repro.core.decomposition import SpatialDecomposition
from repro.core.simulation import DEFAULT_COST_MODEL
from repro.runtime.trace import TraceLog


class TestFromTrace:
    def test_counts_per_step(self):
        t = TraceLog(1, full=True)
        for step in range(4):
            for _ in range(3):
                t.record_execution(0, 0, "x", "nonbonded", 0.0, 0.004)
        h = grainsize_histogram(t, n_steps=4)
        assert h.total_tasks == pytest.approx(3.0)

    def test_empty_category(self):
        t = TraceLog(1, full=True)
        h = grainsize_histogram(t, n_steps=1)
        assert h.total_tasks == 0.0


class TestFromDescriptors:
    def test_splitting_removes_tail(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        before = build_nonbonded_computes(
            d, DEFAULT_COST_MODEL,
            GrainsizeConfig(split_self=True, split_pairs=False),
        )
        after = build_nonbonded_computes(
            d, DEFAULT_COST_MODEL,
            GrainsizeConfig(split_self=True, split_pairs=True),
        )
        h_before = histogram_from_descriptors(before)
        h_after = histogram_from_descriptors(after)
        assert h_after.max_grainsize_ms < h_before.max_grainsize_ms
        assert h_after.total_tasks > h_before.total_tasks

    def test_after_splitting_under_target(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        descs = build_nonbonded_computes(
            d, DEFAULT_COST_MODEL, GrainsizeConfig(target_load_s=0.005, max_parts=256)
        )
        h = histogram_from_descriptors(descs)
        assert h.max_grainsize_ms <= 5.0 * 2.5  # target with striping slop

    def test_cpu_factor_scales(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        descs = build_nonbonded_computes(d, DEFAULT_COST_MODEL)
        h1 = histogram_from_descriptors(descs, cpu_factor=1.0)
        h2 = histogram_from_descriptors(descs, cpu_factor=0.5)
        assert h2.max_grainsize_ms == pytest.approx(h1.max_grainsize_ms / 2)


class TestFormatting:
    def test_format_contains_bars(self, assembly):
        d = SpatialDecomposition(assembly, cutoff=12.0)
        descs = build_nonbonded_computes(d, DEFAULT_COST_MODEL)
        text = format_histogram(histogram_from_descriptors(descs), title="Fig")
        assert "Fig" in text
        assert "ms |" in text

    def test_bimodality_detector(self):
        from repro.analysis.grainsize import GrainsizeHistogram

        bimodal = GrainsizeHistogram(
            np.arange(0, 12.0, 2.0), np.array([5, 1, 0, 0, 3.0]), 9.0, 9.0
        )
        unimodal = GrainsizeHistogram(
            np.arange(0, 8.0, 2.0), np.array([5, 3, 1.0]), 5.0, 9.0
        )
        assert bimodal.bimodality_gap()
        assert not unimodal.bimodality_gap()
