"""Scaling sweeps and table formatting (Tables 2-6)."""

import pytest

from repro.analysis.speedup import format_scaling_table, scaling_sweep
from repro.core.problem import DecomposedProblem
from repro.core.simulation import DEFAULT_COST_MODEL, SimulationConfig


@pytest.fixture(scope="module")
def problem(request):
    assembly = request.getfixturevalue("assembly")
    return DecomposedProblem.build(assembly, DEFAULT_COST_MODEL)


class TestScalingSweep:
    def test_rows_cover_proc_counts(self, problem):
        rows = scaling_sweep(problem, SimulationConfig(n_procs=1), [1, 2, 4])
        assert [r.procs for r in rows] == [1, 2, 4]

    def test_speedup_normalized_to_baseline(self, problem):
        rows = scaling_sweep(problem, SimulationConfig(n_procs=1), [1, 2, 4])
        assert rows[0].speedup == pytest.approx(1.0)

    def test_baseline_procs_convention(self, problem):
        """BC1-style: 'scaled relative to the speedup on two processors=2.0'."""
        rows = scaling_sweep(
            problem, SimulationConfig(n_procs=1), [2, 4], baseline_procs=2
        )
        assert rows[0].speedup == pytest.approx(2.0)

    def test_missing_baseline_falls_back_to_model(self, problem):
        rows = scaling_sweep(
            problem, SimulationConfig(n_procs=1), [4], baseline_procs=1
        )
        assert rows[0].speedup > 1.0

    def test_times_decrease(self, problem):
        rows = scaling_sweep(problem, SimulationConfig(n_procs=1), [1, 4])
        assert rows[1].time_per_step < rows[0].time_per_step


class TestFormatting:
    def test_table_layout(self, problem):
        rows = scaling_sweep(problem, SimulationConfig(n_procs=1), [1, 2])
        text = format_scaling_table(rows, title="Table X")
        assert "Table X" in text
        assert "Procs" in text and "Speedup" in text and "GFLOPS" in text
        assert len(text.splitlines()) == 4

    def test_paper_column(self, problem):
        rows = scaling_sweep(problem, SimulationConfig(n_procs=1), [1, 2])
        text = format_scaling_table(rows, paper_speedups={1: 1.0})
        assert "Paper speedup" in text
        assert "-" in text.splitlines()[-1]  # no paper value for P=2
