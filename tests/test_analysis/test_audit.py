"""Performance audit (Table 1)."""

import pytest

from repro.analysis.audit import performance_audit
from repro.core.problem import DecomposedProblem
from repro.core.simulation import (
    DEFAULT_COST_MODEL,
    ParallelSimulation,
    SimulationConfig,
)


@pytest.fixture(scope="module")
def run(request):
    assembly = request.getfixturevalue("assembly")
    problem = DecomposedProblem.build(assembly, DEFAULT_COST_MODEL)
    cfg = SimulationConfig(n_procs=6)
    return ParallelSimulation(assembly, cfg, problem=problem).run()


class TestAudit:
    def test_accounting_identity(self, run):
        """Columns sum to the total, as in the paper's Table 1."""
        audit = performance_audit(run)
        a = audit.actual
        assert a.total == pytest.approx(
            a.nonbonded + a.bonds + a.integration + a.overhead + a.receives
            + a.imbalance + a.idle,
            rel=1e-9,
        )

    def test_ideal_is_sequential_over_p(self, run):
        audit = performance_audit(run)
        assert audit.ideal.total == pytest.approx(
            run.sequential_reference_s / run.config.n_procs, rel=1e-6
        )
        assert audit.ideal.overhead == 0.0
        assert audit.ideal.idle == 0.0

    def test_actual_total_exceeds_ideal(self, run):
        audit = performance_audit(run)
        assert audit.actual.total > audit.ideal.total

    def test_nonbonded_dominates(self, run):
        """Paper: 'eighty percent or more of the total computation'."""
        audit = performance_audit(run)
        work = audit.actual.nonbonded + audit.actual.bonds + audit.actual.integration
        assert audit.actual.nonbonded / work > 0.6

    def test_format_renders_all_columns(self, run):
        text = performance_audit(run).format()
        for col in ("Total", "Non-bonded", "Bonds", "Integration", "Overhead",
                    "Imbalance", "Idle", "Receives"):
            assert col in text
        assert "Ideal" in text and "Actual" in text

    def test_ms_conversion(self, run):
        audit = performance_audit(run)
        ms = audit.actual.as_ms()
        assert ms["total"] == pytest.approx(audit.actual.total * 1e3)
