"""Utilization profiles."""

import numpy as np
import pytest

from repro.analysis.utilization import (
    format_utilization,
    utilization_profile,
)
from repro.runtime.trace import TraceLog


def make_summary(busy):
    t = TraceLog(len(busy))
    for p, b in enumerate(busy):
        t.record_execution(p, 0, "x", "c", 0.0, b)
    return t.summary()


class TestProfile:
    def test_fractions(self):
        prof = utilization_profile(make_summary([0.5, 1.0, 0.0]), makespan=1.0)
        np.testing.assert_allclose(prof.utilization, [0.5, 1.0, 0.0])
        assert prof.mean == pytest.approx(0.5)
        assert prof.maximum == 1.0 and prof.minimum == 0.0

    def test_clipped_to_one(self):
        prof = utilization_profile(make_summary([2.0]), makespan=1.0)
        assert prof.utilization[0] == 1.0

    def test_idle_processors(self):
        prof = utilization_profile(make_summary([0.0, 0.02, 0.9]), makespan=1.0)
        assert prof.idle_processors() == 2

    def test_rejects_bad_makespan(self):
        with pytest.raises(ValueError):
            utilization_profile(make_summary([1.0]), makespan=0.0)


class TestFormatting:
    def test_one_row_per_proc_small(self):
        prof = utilization_profile(make_summary([0.5] * 8), makespan=1.0)
        out = format_utilization(prof)
        assert len(out.splitlines()) == 9

    def test_binned_for_large_machines(self):
        prof = utilization_profile(make_summary([0.5] * 256), makespan=1.0)
        out = format_utilization(prof, max_rows=32)
        assert len(out.splitlines()) <= 33
        assert "P0-" in out

    def test_percentages_shown(self):
        prof = utilization_profile(make_summary([0.25]), makespan=1.0)
        assert "25.0%" in format_utilization(prof)


class TestEndToEnd:
    def test_lb_raises_utilization(self, assembly):
        """The whole point: after balancing, fewer idle processors."""
        from repro.core.problem import DecomposedProblem
        from repro.core.simulation import (
            DEFAULT_COST_MODEL,
            ParallelSimulation,
            SimulationConfig,
        )

        problem = DecomposedProblem.build(assembly, DEFAULT_COST_MODEL)
        cfg = SimulationConfig(n_procs=16)
        res = ParallelSimulation(assembly, cfg, problem=problem).run()
        before = utilization_profile(
            res.phases[0].summary, res.phases[0].timings.completion_times[-1]
        )
        after = utilization_profile(
            res.final.summary, res.final.timings.completion_times[-1]
        )
        assert after.mean > before.mean
