"""Timeline rendering (Figures 3-4)."""

import pytest

from repro.analysis.timeline import render_timeline
from repro.runtime.trace import TraceLog


def make_trace():
    t = TraceLog(2, full=True)
    t.record_execution(0, 0, "p0", "integration", 0.0, 0.4)
    t.record_execution(0, 1, "c", "nonbonded", 0.4, 0.4)
    t.record_execution(1, 2, "c2", "bonded", 0.2, 0.6)
    return t


class TestTimeline:
    def test_renders_rows_per_processor(self):
        out = render_timeline(make_trace(), [0, 1], 0.0, 1.0, width=10)
        lines = out.splitlines()
        assert len(lines) == 3  # header + 2 procs
        assert lines[1].startswith("P0")
        assert lines[2].startswith("P1")

    def test_category_codes_present(self):
        out = render_timeline(make_trace(), [0, 1], 0.0, 1.0, width=20)
        assert "I" in out
        assert "N" in out
        assert "B" in out

    def test_idle_shown_as_dots(self):
        out = render_timeline(make_trace(), [1], 0.0, 1.0, width=10)
        row = out.splitlines()[1]
        assert "." in row  # proc 1 idle at the start and end

    def test_window_validation(self):
        with pytest.raises(ValueError):
            render_timeline(make_trace(), [0], 1.0, 1.0)

    def test_width_respected(self):
        out = render_timeline(make_trace(), [0], 0.0, 1.0, width=25)
        row = out.splitlines()[1]
        body = row.split("|")[1]
        assert len(body) == 25

    def test_majority_category_wins_slot(self):
        t = TraceLog(1, full=True)
        t.record_execution(0, 0, "a", "integration", 0.0, 0.09)
        t.record_execution(0, 1, "b", "nonbonded", 0.09, 0.91)
        out = render_timeline(t, [0], 0.0, 1.0, width=10)
        body = out.splitlines()[1].split("|")[1]
        assert body[0] == "I"
        assert body[5] == "N"
